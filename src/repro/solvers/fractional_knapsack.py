"""Fractional (continuous bounded) knapsack solver.

The routing subproblem of the paper's Lagrangian decomposition (Eq. 20)
has the form::

    min   sum_i  c_i * z_i
    s.t.  sum_i  w_i * z_i <= budget
          0 <= z_i <= cap_i

with weights ``w_i > 0`` (the demand ``lambda[u, f]``) and arbitrary-sign
costs ``c_i``.  Only items with ``c_i < 0`` are worth taking; taking them
in increasing order of ``c_i / w_i`` (most negative cost per unit of
budget first) is optimal — the classic greedy exchange argument.

The solver is exact, runs in ``O(k log k)`` for ``k`` profitable items,
and is cross-checked against the generic LP solvers in the tests.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .. import perf
from .._validation import ArrayLike
from ..exceptions import ValidationError

__all__ = [
    "KnapsackResult",
    "BatchKnapsackResult",
    "KnapsackBatchWorkspace",
    "solve_fractional_knapsack",
    "solve_fractional_knapsack_batch",
    "maximize_fractional_knapsack",
]


@dataclasses.dataclass(frozen=True)
class KnapsackResult:
    """Solution of a fractional knapsack instance."""

    allocation: np.ndarray
    objective: float
    budget_used: float

    def saturated(self, budget: float, *, rtol: float = 1e-9) -> bool:
        """Whether the budget constraint is (numerically) tight."""
        return bool(self.budget_used >= budget * (1.0 - rtol))


@dataclasses.dataclass(frozen=True)
class _Checked:
    costs: np.ndarray
    weights: np.ndarray
    caps: np.ndarray
    budget: float


def _validate(
    costs: ArrayLike,
    weights: ArrayLike,
    caps: Optional[ArrayLike],
    budget: float,
) -> _Checked:
    costs = np.asarray(costs, dtype=np.float64).ravel()
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if caps is None:
        caps = np.ones_like(costs)
    else:
        caps = np.asarray(caps, dtype=np.float64).ravel()
    if not (costs.shape == weights.shape == caps.shape):
        raise ValidationError(
            "costs, weights and caps must have identical lengths; got "
            f"{costs.shape}, {weights.shape}, {caps.shape}"
        )
    if np.any(~np.isfinite(costs)) or np.any(~np.isfinite(weights)) or np.any(~np.isfinite(caps)):
        raise ValidationError("knapsack inputs must be finite")
    if np.any(weights < 0):
        raise ValidationError("knapsack weights must be nonnegative")
    if np.any(caps < 0):
        raise ValidationError("knapsack caps must be nonnegative")
    budget = float(budget)
    if not np.isfinite(budget) or budget < 0:
        raise ValidationError(f"knapsack budget must be finite and nonnegative, got {budget}")
    return _Checked(costs=costs, weights=weights, caps=caps, budget=budget)


def solve_fractional_knapsack(
    costs: ArrayLike,
    weights: ArrayLike,
    budget: float,
    caps: Optional[np.ndarray] = None,
    *,
    validate: bool = True,
) -> KnapsackResult:
    """Minimize ``costs @ z`` subject to ``weights @ z <= budget, 0 <= z <= caps``.

    Items with nonnegative cost are left at zero (taking them can only
    hurt).  Zero-weight items with negative cost are free and taken at
    their cap.  Remaining profitable items are taken greedily by cost per
    unit weight until the budget is exhausted, splitting the marginal
    item fractionally.

    ``validate=False`` is the trusted-caller fast path: inputs must
    already be finite, 1-D ``float64`` arrays of equal length with
    nonnegative weights/caps and a nonnegative float budget (``caps``
    required).  The dual-ascent inner loop of Algorithm 1 calls this
    thousands of times per run, where re-validating unchanged arrays
    dominated small instances; the greedy itself is identical bit for
    bit on either path.
    """
    perf.count("knapsack.calls")
    if validate:
        data = _validate(costs, weights, caps, budget)
    else:
        data = _Checked(costs=costs, weights=weights, caps=caps, budget=budget)
    allocation = np.zeros_like(data.costs)

    profitable = data.costs < 0
    free = profitable & (data.weights == 0)
    allocation[free] = data.caps[free]

    paid = np.flatnonzero(profitable & (data.weights > 0))
    if paid.size:
        ratio = data.costs[paid] / data.weights[paid]
        order = paid[np.argsort(ratio, kind="stable")]
        # Vectorized greedy: item k may take whatever budget is left after
        # all better-ratio items took their fill.
        full = data.caps[order] * data.weights[order]
        budget_before = np.concatenate(([0.0], np.cumsum(full)[:-1]))
        take = np.clip(data.budget - budget_before, 0.0, full)
        positive = take > 0
        allocation[order[positive]] = take[positive] / data.weights[order[positive]]

    objective = float(data.costs @ allocation)
    budget_used = float(data.weights @ allocation)
    return KnapsackResult(allocation=allocation, objective=objective, budget_used=budget_used)


@dataclasses.dataclass(frozen=True)
class BatchKnapsackResult:
    """Solutions of ``B`` fractional knapsacks sharing weights and budget.

    Row ``b`` is bit-identical to
    ``solve_fractional_knapsack(costs[b], weights, budget, caps[b])``.
    """

    allocations: np.ndarray  # (B, K)
    objectives: np.ndarray  # (B,)
    budgets_used: np.ndarray  # (B,)


class KnapsackBatchWorkspace:
    """Preallocated buffers for batched fractional-knapsack solves.

    A workspace holds ``rows`` independent knapsack rows over ``items``
    shared-weight items.  The solve is split into two stages so callers
    can hoist whatever is invariant for them:

    * :meth:`prepare_row` / :meth:`prepare_all` — the cost-dependent
      stage: profitability masks, value-density ratios and the stable
      greedy order.  Rows whose costs do not change between solves (the
      primal-recovery row of the dual ascent, every polish trial) pay
      for their sort exactly once.
    * :meth:`solve_row` / :meth:`solve_all` / :meth:`solve_prepared` —
      the caps-dependent stage: cumulative-capacity masking and the
      fractional tail split, pure array ops with no Python-level loop.

    Every stage reproduces :func:`solve_fractional_knapsack` bit for
    bit: the full-row stable argsort (non-profitable items pinned to
    ``+inf`` density) restricts to the scalar solver's stable subset
    sort — its first ``paid_count[row]`` positions are exactly the
    scalar solver's paid subset in the same greedy order, so the solve
    stage touches only that prefix — excluded items contribute exactly
    ``0.0`` to the cumulative budget, and the tail split performs the
    same elementwise divisions.
    """

    __slots__ = (
        "rows",
        "items",
        "weights",
        "paid",
        "free",
        "ratio",
        "order",
        "sorted_full",
        "before",
        "take",
        "w_sorted",
        "w_eff",
        "paid_count",
        "positive",
        "vals",
        "allocation",
        "_wpos",
        "_wzero",
        "_w_has_zero",
        "_free_any",
        "_row_offsets",
        "_flat_order",
        "_alloc_flat",
    )

    def __init__(self, rows: int, items: int) -> None:
        if rows < 1 or items < 1:
            raise ValidationError(
                f"batch workspace needs rows >= 1 and items >= 1, got ({rows}, {items})"
            )
        self.rows = rows
        self.items = items
        self.weights = np.empty(items)
        shape = (rows, items)
        self.paid = np.zeros(shape, dtype=bool)
        self.free = np.zeros(shape, dtype=bool)
        self.ratio = np.empty(shape)
        self.order = np.empty(shape, dtype=np.intp)
        self.sorted_full = np.empty(shape)
        self.before = np.empty(shape)
        self.take = np.empty(shape)
        self.w_sorted = np.empty(shape)
        self.w_eff = np.empty(shape)
        self.paid_count = np.zeros(rows, dtype=np.intp)
        self.positive = np.empty(shape, dtype=bool)
        self.vals = np.empty(shape)
        self.allocation = np.empty(shape)
        self._wpos = np.empty(items, dtype=bool)
        self._wzero = np.empty(items, dtype=bool)
        self._w_has_zero = False
        self._free_any = np.zeros(rows, dtype=bool)
        # Flat-index scaffolding: per-row greedy orders offset into the
        # flattened (rows * items) buffers, so gather/scatter go through
        # plain ``take`` / fancy assignment instead of the much slower
        # ``take_along_axis`` machinery.
        self._row_offsets = (np.arange(rows, dtype=np.intp) * items)[:, np.newaxis]
        self._flat_order = np.empty(shape, dtype=np.intp)
        self._alloc_flat = self.allocation.reshape(-1)

    def has_free(self, row: int) -> bool:
        """Whether the prepared row has free items (negative cost, zero weight)."""
        return bool(self._free_any[row])

    def bind_weights(self, weights: np.ndarray) -> None:
        """Install the shared item weights (trusted: 1-D float64, >= 0)."""
        np.copyto(self.weights, weights)
        np.greater(self.weights, 0.0, out=self._wpos)
        np.equal(self.weights, 0.0, out=self._wzero)
        self._w_has_zero = bool(self._wzero.any())

    def prepare_row(self, row: int, costs: np.ndarray) -> None:
        """Cost-dependent stage for one row: masks, densities, greedy order."""
        paid = self.paid[row]
        # ``paid`` transiently holds the profitability mask (costs < 0)
        # until the positive-weight restriction lands on top of it.
        np.less(costs, 0.0, out=paid)
        if self._w_has_zero:
            np.logical_and(paid, self._wzero, out=self.free[row])
            self._free_any[row] = bool(self.free[row].any())
        else:
            self._free_any[row] = False
        np.logical_and(paid, self._wpos, out=paid)
        # Subset sort, exactly as the scalar solver: gather the paid
        # items, sort their value densities stably, and keep the order
        # as item indices.  Sorting n paid items instead of the full row
        # is the difference between O(K log K) and O(n log n) per dual
        # iteration.
        paid_idx = np.flatnonzero(paid)
        n = paid_idx.size
        self.paid_count[row] = n
        order = self.order[row]
        w_sorted = self.w_sorted[row]
        w_eff = self.w_eff[row]
        if n:
            ratio = costs[paid_idx] / self.weights[paid_idx]
            order_n = paid_idx[ratio.argsort(kind="stable")]
            order[:n] = order_n
            self.weights.take(order_n, out=w_sorted[:n])
            w_eff[:n] = w_sorted[:n]
        # The tail is never part of the greedy prefix; index 0 keeps the
        # rectangular solve_all gather in bounds and w_eff zeroes its
        # contribution.
        order[n:] = 0
        w_eff[n:] = 0.0

    def prepare_all(self, costs: np.ndarray) -> None:
        """Cost-dependent stage for every row at once (``costs``: (rows, items))."""
        np.less(costs, 0.0, out=self.paid)
        if self._w_has_zero:
            np.logical_and(self.paid, self._wzero[np.newaxis, :], out=self.free)
            np.any(self.free, axis=1, out=self._free_any)
        else:
            self.free[:] = False
            self._free_any[:] = False
        np.logical_and(self.paid, self._wpos[np.newaxis, :], out=self.paid)
        self.ratio.fill(np.inf)
        np.divide(costs, self.weights[np.newaxis, :], out=self.ratio, where=self.paid)
        self.order[:, :] = self.ratio.argsort(axis=1, kind="stable")
        self.paid_count[:] = np.count_nonzero(self.paid, axis=1)
        self.weights.take(self.order, out=self.w_sorted)
        # w_eff zeroes the non-paid tail of each row so the rectangular
        # solve stage can run to the longest paid prefix; within the
        # prefix the *1.0 mask is exact.
        prefix = np.arange(self.items, dtype=np.intp)[np.newaxis, :]
        np.multiply(self.w_sorted, prefix < self.paid_count[:, np.newaxis], out=self.w_eff)

    def solve_row(self, row: int, caps: np.ndarray, budget: float) -> np.ndarray:
        """Caps-dependent stage for one prepared row; returns a buffer view."""
        perf.count("knapsack.batched_rows")
        allocation = self.allocation[row]
        allocation.fill(0.0)
        n = int(self.paid_count[row])
        if n:
            order_n = self.order[row, :n]
            sorted_full = self.sorted_full[row, :n]
            caps.take(order_n, out=sorted_full)
            np.multiply(sorted_full, self.w_eff[row, :n], out=sorted_full)
            before = self.before[row, :n]
            before[0] = 0.0
            sorted_full[:-1].cumsum(out=before[1:])
            take = self.take[row, :n]
            np.subtract(budget, before, out=take)
            # clip(x, 0, hi) == min(max(x, 0), hi) elementwise for finite
            # inputs — two in-place ufuncs instead of the clip dispatch.
            np.maximum(take, 0.0, out=take)
            np.minimum(take, sorted_full, out=take)
            positive = self.positive[row, :n]
            np.greater(take, 0.0, out=positive)
            vals = self.vals[row, :n]
            vals.fill(0.0)
            np.divide(take, self.w_sorted[row, :n], out=vals, where=positive)
            allocation[order_n] = vals
        if self._free_any[row]:
            free = self.free[row]
            allocation[free] = caps[free]
        return allocation

    def solve_row_scaled(
        self, row: int, scaled: np.ndarray, caps: np.ndarray, budget: float
    ) -> np.ndarray:
        """Like :meth:`solve_row` with ``caps * weights`` precomputed.

        ``scaled`` must hold the elementwise product ``caps * weights``
        — callers whose caps are loop-invariant (the dual routing row of
        the ascent) hoist that multiply out entirely.  ``caps`` is still
        needed for the free-item fixup.
        """
        perf.count("knapsack.batched_rows")
        allocation = self.allocation[row]
        allocation.fill(0.0)
        n = int(self.paid_count[row])
        if n:
            order_n = self.order[row, :n]
            sorted_full = self.sorted_full[row, :n]
            scaled.take(order_n, out=sorted_full)
            before = self.before[row, :n]
            before[0] = 0.0
            sorted_full[:-1].cumsum(out=before[1:])
            take = self.take[row, :n]
            np.subtract(budget, before, out=take)
            np.maximum(take, 0.0, out=take)
            np.minimum(take, sorted_full, out=take)
            positive = self.positive[row, :n]
            np.greater(take, 0.0, out=positive)
            vals = self.vals[row, :n]
            vals.fill(0.0)
            np.divide(take, self.w_sorted[row, :n], out=vals, where=positive)
            allocation[order_n] = vals
        if self._free_any[row]:
            free = self.free[row]
            allocation[free] = caps[free]
        return allocation

    def solve_all(self, caps: np.ndarray, budget: float) -> np.ndarray:
        """Caps-dependent stage for every prepared row; returns a buffer view."""
        perf.count("knapsack.batched_rows", self.rows)
        self.allocation.fill(0.0)
        limit = int(self.paid_count.max())
        if limit:
            # Row-offset flat indices turn the per-row permutation into
            # one flat gather + one flat scatter (``take_along_axis``
            # builds its index grids on every call); rows with fewer
            # paid items than ``limit`` see zeros past their prefix
            # because ``w_eff`` masks their tail.
            order_n = self.order[:, :limit]
            flat_order = self._flat_order[:, :limit]
            np.add(order_n, self._row_offsets, out=flat_order)
            sorted_full = self.sorted_full[:, :limit]
            np.multiply(
                caps.reshape(-1).take(flat_order),
                self.w_eff[:, :limit],
                out=sorted_full,
            )
            before = self.before[:, :limit]
            before[:, 0] = 0.0
            sorted_full[:, :-1].cumsum(axis=1, out=before[:, 1:])
            take = self.take[:, :limit]
            np.subtract(budget, before, out=take)
            np.maximum(take, 0.0, out=take)
            np.minimum(take, sorted_full, out=take)
            positive = self.positive[:, :limit]
            np.greater(take, 0.0, out=positive)
            vals = self.vals[:, :limit]
            vals.fill(0.0)
            np.divide(take, self.w_sorted[:, :limit], out=vals, where=positive)
            self._alloc_flat[flat_order] = vals
        if self._free_any.any():
            self.allocation[self.free] = caps[self.free]
        return self.allocation

    def solve_prepared(
        self,
        row: int,
        caps: np.ndarray,
        budget: float,
        *,
        scratch: Optional["KnapsackBatchWorkspace"] = None,
    ) -> np.ndarray:
        """Solve ``T`` cap variations of one prepared row (``caps``: (T, items)).

        All variations share row ``row``'s costs, so they share its masks
        and greedy order — no per-variation sort.  With a ``scratch``
        workspace of at least ``T`` rows over the same item count, the
        solve runs in its preallocated buffers and returns a view into
        them (valid until the next call); otherwise fresh ``(T, items)``
        arrays are allocated.
        """
        trials = caps.shape[0]
        perf.count("knapsack.batched_rows", trials)
        n = int(self.paid_count[row])
        if scratch is not None and scratch.items == self.items and scratch.rows >= trials:
            sorted_full = scratch.sorted_full[:trials, :n]
            before = scratch.before[:trials, :n]
            take = scratch.take[:trials, :n]
            positive = scratch.positive[:trials, :n]
            vals = scratch.vals[:trials, :n]
            allocation = scratch.allocation[:trials]
        else:
            sorted_full = np.empty((trials, n))
            before = np.empty((trials, n))
            take = np.empty((trials, n))
            positive = np.empty((trials, n), dtype=bool)
            vals = np.empty((trials, n))
            allocation = np.empty_like(caps)
        allocation.fill(0.0)
        if n:
            order_n = self.order[row, :n]
            np.multiply(caps[:, order_n], self.w_eff[row, :n], out=sorted_full)
            before[:, 0] = 0.0
            sorted_full[:, :-1].cumsum(axis=1, out=before[:, 1:])
            np.subtract(budget, before, out=take)
            np.maximum(take, 0.0, out=take)
            np.minimum(take, sorted_full, out=take)
            np.greater(take, 0.0, out=positive)
            vals.fill(0.0)
            np.divide(
                take, self.w_sorted[row, :n][np.newaxis, :], out=vals, where=positive
            )
            allocation[:, order_n] = vals
        if self._free_any[row]:
            free = self.free[row]
            allocation[:, free] = caps[:, free]
        return allocation


def _validate_batch(
    costs: ArrayLike,
    weights: ArrayLike,
    caps: Optional[ArrayLike],
    budget: float,
) -> _Checked:
    costs_arr = np.asarray(costs, dtype=np.float64)
    if costs_arr.ndim != 2:
        raise ValidationError(f"batch costs must be 2-D (rows, items), got {costs_arr.shape}")
    weights_arr = np.asarray(weights, dtype=np.float64).ravel()
    if caps is None:
        caps_arr = np.ones_like(costs_arr)
    else:
        caps_arr = np.asarray(caps, dtype=np.float64)
    if caps_arr.shape != costs_arr.shape:
        raise ValidationError(
            f"batch caps shape {caps_arr.shape} must match costs shape {costs_arr.shape}"
        )
    if weights_arr.shape != (costs_arr.shape[1],):
        raise ValidationError(
            f"batch weights must be shared 1-D of length {costs_arr.shape[1]}, "
            f"got {weights_arr.shape}"
        )
    if (
        np.any(~np.isfinite(costs_arr))
        or np.any(~np.isfinite(weights_arr))
        or np.any(~np.isfinite(caps_arr))
    ):
        raise ValidationError("knapsack inputs must be finite")
    if np.any(weights_arr < 0):
        raise ValidationError("knapsack weights must be nonnegative")
    if np.any(caps_arr < 0):
        raise ValidationError("knapsack caps must be nonnegative")
    budget = float(budget)
    if not np.isfinite(budget) or budget < 0:
        raise ValidationError(f"knapsack budget must be finite and nonnegative, got {budget}")
    return _Checked(costs=costs_arr, weights=weights_arr, caps=caps_arr, budget=budget)


def solve_fractional_knapsack_batch(
    costs: ArrayLike,
    weights: ArrayLike,
    budget: float,
    caps: Optional[np.ndarray] = None,
    *,
    workspace: Optional[KnapsackBatchWorkspace] = None,
    validate: bool = True,
) -> BatchKnapsackResult:
    """Solve ``B`` independent knapsacks sharing ``weights`` and ``budget``.

    ``costs`` and ``caps`` are ``(B, K)``; row ``b`` of the result is bit
    for bit the solution of ``solve_fractional_knapsack(costs[b],
    weights, budget, caps[b])`` — same stable tie-breaking, same
    floating-point operations — computed in a handful of array ops over
    the whole batch instead of ``B`` scalar solves.  ``workspace`` is
    reused when its ``(rows, items)`` matches, otherwise a fresh one is
    allocated.
    """
    perf.count("knapsack.batches")
    if validate:
        data = _validate_batch(costs, weights, caps, budget)
    else:
        assert caps is not None
        data = _Checked(costs=costs, weights=weights, caps=caps, budget=budget)
    rows, items = data.costs.shape
    if workspace is None or workspace.rows != rows or workspace.items != items:
        workspace = KnapsackBatchWorkspace(rows, items)
    workspace.bind_weights(data.weights)
    workspace.prepare_all(data.costs)
    allocations = workspace.solve_all(data.caps, data.budget).copy()
    objectives = np.array([float(data.costs[b] @ allocations[b]) for b in range(rows)])
    budgets_used = np.array([float(data.weights @ allocations[b]) for b in range(rows)])
    return BatchKnapsackResult(
        allocations=allocations, objectives=objectives, budgets_used=budgets_used
    )


def maximize_fractional_knapsack(
    values: ArrayLike,
    weights: ArrayLike,
    budget: float,
    caps: Optional[np.ndarray] = None,
) -> KnapsackResult:
    """Maximize ``values @ z`` under the same constraints.

    Convenience wrapper: ``max v@z == -min (-v)@z``.  The returned
    ``objective`` is the *maximized* value.
    """
    result = solve_fractional_knapsack(-np.asarray(values, dtype=np.float64), weights, budget, caps)
    return KnapsackResult(
        allocation=result.allocation,
        objective=-result.objective,
        budget_used=result.budget_used,
    )
