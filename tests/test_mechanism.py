"""Tests for the LPPM mechanism (Definition 2, Theorem 4)."""

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.privacy.mechanism import LaplacePrivacyMechanism, LPPMConfig


class TestConfig:
    def test_beta_formula(self):
        config = LPPMConfig(epsilon=0.5, sensitivity=2.0)
        assert config.beta == pytest.approx(4.0)

    def test_defaults_match_paper(self):
        config = LPPMConfig(epsilon=0.1)
        assert config.delta == 0.5

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyError):
            LPPMConfig(epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(PrivacyError):
            LPPMConfig(epsilon=1.0, delta=1.0)  # delta in [0, 1)
        with pytest.raises(PrivacyError):
            LPPMConfig(epsilon=1.0, delta=-0.1)

    def test_invalid_sensitivity(self):
        with pytest.raises(PrivacyError):
            LPPMConfig(epsilon=1.0, sensitivity=0.0)


class TestPerturbation:
    def test_subtractive(self):
        """Eq. 27: y_hat = y - r with r >= 0, so y_hat <= y."""
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.1), rng=0)
        routing = np.full((4, 5), 0.8)
        perturbed = mechanism.perturb(routing)
        assert np.all(perturbed <= routing + 1e-12)

    def test_noise_bounded_by_delta_y(self):
        """r in [0, delta * y] so y_hat >= (1 - delta) * y — the bound
        Theorem 3's convergence argument relies on."""
        delta = 0.4
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.01, delta=delta), rng=1)
        routing = np.random.default_rng(0).uniform(0.0, 1.0, size=(6, 6))
        perturbed = mechanism.perturb(routing)
        assert np.all(perturbed >= (1.0 - delta) * routing - 1e-12)

    def test_zero_routing_untouched(self):
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.1), rng=0)
        routing = np.zeros((3, 3))
        np.testing.assert_array_equal(mechanism.perturb(routing), routing)

    def test_output_in_unit_interval(self):
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=1.0), rng=2)
        routing = np.random.default_rng(1).uniform(0.0, 1.0, size=(5, 5))
        perturbed = mechanism.perturb(routing)
        assert perturbed.min() >= 0.0 and perturbed.max() <= 1.0

    def test_rejects_out_of_range_routing(self):
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.1), rng=0)
        with pytest.raises(PrivacyError):
            mechanism.perturb(np.array([[1.4]]))

    def test_reproducible_with_seed(self):
        routing = np.full((3, 3), 0.6)
        a = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.1), rng=7).perturb(routing)
        b = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.1), rng=7).perturb(routing)
        np.testing.assert_array_equal(a, b)

    def test_higher_epsilon_less_noise_on_average(self):
        routing = np.full((10, 10), 0.9)
        noises = []
        for epsilon in (0.01, 100.0):
            mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=epsilon), rng=3)
            total = 0.0
            for _ in range(20):
                total += float(np.sum(routing - mechanism.perturb(routing)))
            noises.append(total)
        assert noises[0] > noises[1]

    def test_expected_noise_closed_form(self):
        config = LPPMConfig(epsilon=0.1, delta=0.5)
        mechanism = LaplacePrivacyMechanism(config, rng=4)
        routing = np.full((8, 8), 0.8)
        expected = mechanism.expected_noise(routing)
        empirical = np.zeros_like(routing)
        for _ in range(300):
            empirical += routing - mechanism.perturb(routing)
        empirical /= 300
        assert empirical.mean() == pytest.approx(float(expected.mean()), rel=0.1)


class TestAuditTrail:
    def test_records_accumulate(self):
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.2), rng=0)
        routing = np.full((2, 2), 0.5)
        mechanism.perturb(routing)
        mechanism.perturb(routing)
        assert mechanism.releases() == 2
        assert mechanism.total_epsilon_basic() == pytest.approx(0.4)

    def test_record_contents(self):
        mechanism = LaplacePrivacyMechanism(LPPMConfig(epsilon=0.2), rng=0)
        mechanism.perturb(np.full((2, 3), 0.5))
        record = mechanism.records[0]
        assert record.coordinates == 6
        assert record.noise_l1 >= 0.0
        assert record.noise_max <= 0.25 + 1e-12  # delta * y = 0.25
