"""Parallel sweep engine: bit-identical to serial, dedup-safe, fault-safe."""

import numpy as np
import pytest

from repro import obs
from repro.core.distributed import DistributedConfig
from repro.exceptions import ValidationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import _CellTask, _evaluate_cells, run_sweep
from repro.network.faults import FaultConfig, FaultSchedule, LinkFaultProfile
from repro.obs import TraceReader, validate_events

TINY = ScenarioConfig(num_groups=8, num_links=10)
CONFIG = DistributedConfig(accuracy=1e-3, max_iterations=2)


def _sweep(**kwargs):
    defaults = dict(
        epsilon_of_x=lambda x: float(x),
        seeds=(7, 11),
        distributed_config=CONFIG,
    )
    defaults.update(kwargs)
    return run_sweep(
        "test", "epsilon", [0.1, 10.0], lambda _x: TINY, **defaults
    )


class TestBitIdentity:
    def test_parallel_matches_serial(self):
        """The headline guarantee: workers=N changes nothing, bit for bit."""
        serial = _sweep(workers=1)
        parallel = _sweep(workers=4)
        assert serial == parallel

    def test_dedup_matches_plain_serial(self):
        assert _sweep(workers=1, dedup=False) == _sweep(workers=1, dedup=True)

    def test_parallel_without_dedup_matches_serial(self):
        assert _sweep(workers=1, dedup=False) == _sweep(workers=2, dedup=False)

    def test_parallel_with_scenario_variation(self):
        """Sweeps that vary the scenario (Fig. 4 style) also agree."""

        def sweep(workers):
            return run_sweep(
                "mus",
                "groups",
                [6.0, 8.0],
                lambda x: TINY.replace(num_groups=int(x)),
                epsilon_of_x=lambda _x: 0.1,
                seeds=(7,),
                distributed_config=CONFIG,
                workers=workers,
            )

        assert sweep(1) == sweep(2)

    def test_parallel_with_faults(self):
        """Fault-injected sweeps run the resilient protocol; still identical."""
        faults = FaultConfig(
            default=LinkFaultProfile(drop=0.1),
            schedule=FaultSchedule(),
            seed=3,
        )
        serial = _sweep(workers=1, faults=faults)
        parallel = _sweep(workers=2, faults=faults)
        assert serial == parallel

    def test_lppm_cells_depend_on_epsilon(self):
        """Sanity: the sweep actually exercises LPPM noise per coordinate."""
        result = _sweep(workers=2)
        lppm = result.series("lppm")
        optimum = result.series("optimum")
        assert not np.allclose(lppm, optimum)
        # Optimum and LRFU ignore epsilon, so their series are flat.
        assert result.series("optimum")[0] == result.series("optimum")[1]


class TestTraceDeterminism:
    """Sweep traces are a pure function of the task list, not the scheduling."""

    def _traced_sweep(self, path, *, timings=True, **kwargs):
        with obs.recording(path, timings=timings):
            result = _sweep(**kwargs)
        return result

    def test_parallel_trace_is_byte_identical_to_serial(self, tmp_path):
        # timings=False: wall-clock solve_seconds would differ per run.
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        serial = self._traced_sweep(serial_path, workers=1, timings=False)
        parallel = self._traced_sweep(parallel_path, workers=4, timings=False)
        assert serial == parallel
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_sweep_trace_validates_and_groups_by_cell(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._traced_sweep(path, workers=2)
        reader = TraceReader(path)
        assert validate_events(reader.events) == []
        cells = reader.cells()
        # 2 x-values x 2 seeds x 3 schemes = 12 tasks; optimum and lrfu
        # dedup across the epsilon axis, lppm cells stay distinct.
        assert len(cells) == 8
        starts = [e for e in reader.events if e["type"] == "cell_start"]
        assert {e["scheme"] for e in starts} == {"optimum", "lppm", "lrfu"}

    def test_trace_carries_no_scheduling_fields(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        self._traced_sweep(path, workers=3)
        assert "workers" not in path.read_text()

    def test_dedup_off_traces_every_cell(self, tmp_path):
        path = tmp_path / "nodedup.jsonl"
        self._traced_sweep(path, workers=2, dedup=False)
        assert len(TraceReader(path).cells()) == 12


class TestDeduplication:
    def test_identical_cells_collapse(self):
        task = _CellTask(
            scheme="lrfu", scenario=TINY, rng=9, config=None, faults=None
        )
        costs = _evaluate_cells([task, task, task], workers=1, dedup=True)
        assert costs[0] == costs[1] == costs[2]

    def test_faulty_cells_are_never_deduplicated(self):
        faults = FaultConfig(seed=1)
        task = _CellTask(
            scheme="optimum", scenario=TINY, rng=9, config=CONFIG, faults=faults
        )
        assert task.key() is None

    def test_distinct_cells_have_distinct_keys(self):
        a = _CellTask(scheme="lrfu", scenario=TINY, rng=9, config=None, faults=None)
        b = _CellTask(scheme="lrfu", scenario=TINY, rng=10, config=None, faults=None)
        assert a.key() != b.key()


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValidationError):
            _sweep(workers=0)

    def test_rejects_empty_x_values(self):
        with pytest.raises(ValidationError):
            run_sweep(
                "empty",
                "x",
                [],
                lambda _x: TINY,
                epsilon_of_x=lambda x: float(x),
            )

    def test_unknown_scheme_cell_raises(self):
        from repro.experiments.runner import _evaluate_cell

        bad = _CellTask(
            scheme="nope", scenario=TINY, rng=1, config=None, faults=None
        )
        with pytest.raises(ValidationError):
            _evaluate_cell(bad)


class TestZeroCopyDispatch:
    """The fork/shared-memory task publication: no per-task pickles, exact."""

    def test_effective_workers_clamps_on_single_cpu(self, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 1)
        assert runner._effective_workers(8, 12) == 1

    def test_effective_workers_passes_through_on_many_cpus(self, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setattr(runner.os, "cpu_count", lambda: 8)
        assert runner._effective_workers(4, 12) == 4
        assert runner._effective_workers(4, 2) == 2
        assert runner._effective_workers(1, 12) == 1
        assert runner._effective_workers(4, 1) == 1

    def test_forced_pool_bit_identical(self, monkeypatch):
        """Bypass the single-CPU clamp: the real pool must agree exactly."""
        import repro.experiments.runner as runner

        serial = _sweep(workers=1)
        monkeypatch.setattr(
            runner, "_effective_workers", lambda w, c: min(w, c) if w > 1 else 1
        )
        pooled = _sweep(workers=2)
        assert serial == pooled

    def test_forced_shared_memory_path_bit_identical(self, monkeypatch):
        """The spawn fallback ships tasks via one shared-memory block."""
        import repro.experiments.runner as runner

        serial = _sweep(workers=1)
        monkeypatch.setattr(
            runner, "_effective_workers", lambda w, c: min(w, c) if w > 1 else 1
        )
        # Patch the runner's seam, NOT multiprocessing.get_start_method:
        # lazily-imported stdlib submodules would capture a module-attr
        # patch permanently and poison later spawn-based tests.
        monkeypatch.setattr(runner, "_start_method", lambda: "forced-shm")
        pooled = _sweep(workers=2)
        assert serial == pooled

    def test_problem_memo_returns_identical_instance(self):
        from repro.experiments.runner import _problem_for

        assert _problem_for(TINY) is _problem_for(TINY)

    def test_worker_payload_cleared_after_map(self, monkeypatch):
        import repro.experiments.runner as runner

        monkeypatch.setattr(
            runner, "_effective_workers", lambda w, c: min(w, c) if w > 1 else 1
        )
        _sweep(workers=2)
        assert runner._WORKER_TASKS is None
