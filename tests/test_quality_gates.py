"""Repository-wide quality gates: docstrings, API hygiene, regressions."""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.core",
    "repro.solvers",
    "repro.privacy",
    "repro.network",
    "repro.workload",
    "repro.baselines",
    "repro.attacks",
    "repro.experiments",
    "repro.perf",
    "repro.obs",
]


def iter_all_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                yield importlib.import_module(f"{package_name}.{info.name}")


class TestDocstrings:
    def test_every_module_documented(self):
        undocumented = [
            module.__name__
            for module in iter_all_modules()
            if not (module.__doc__ or "").strip()
        ]
        assert not undocumented, f"modules without docstrings: {undocumented}"

    def test_every_public_callable_documented(self):
        undocumented = []
        for module in iter_all_modules():
            exported = getattr(module, "__all__", [])
            for name in exported:
                obj = getattr(module, name)
                if inspect.isfunction(obj) or inspect.isclass(obj):
                    if obj.__module__ != module.__name__:
                        continue  # re-export; documented at its home
                    if not (obj.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}")
        assert not undocumented, f"public API without docstrings: {undocumented}"

    def test_public_classes_document_their_methods(self):
        """Every public method on exported classes carries a docstring."""
        undocumented = []
        for module in iter_all_modules():
            for name in getattr(module, "__all__", []):
                obj = getattr(module, name)
                if not inspect.isclass(obj) or obj.__module__ != module.__name__:
                    continue
                for method_name, method in inspect.getmembers(obj, inspect.isfunction):
                    if method_name.startswith("_"):
                        continue
                    if method.__qualname__.split(".")[0] != obj.__name__:
                        continue  # inherited
                    if not (method.__doc__ or "").strip():
                        undocumented.append(f"{module.__name__}.{name}.{method_name}")
        assert not undocumented, f"methods without docstrings: {undocumented}"


class TestRegressionAnchors:
    """Seeded end-to-end numbers pinned loosely to catch silent drift.

    Tolerances are wide enough for legitimate algorithmic tuning but
    tight enough to flag a broken cost function, a mangled trace, or a
    solver returning garbage.
    """

    def test_default_scenario_shape(self):
        problem = repro.build_problem()
        assert problem.shape == (3, 30, 50)
        assert problem.total_demand() == pytest.approx(10_500.0)
        assert problem.max_cost() == pytest.approx(1_291_436.0, rel=0.001)

    def test_trace_anchor(self):
        from repro.workload import trending_video_trace

        trace = trending_video_trace()
        assert trace.views[0] == 140_000.0
        assert trace.total_views() == pytest.approx(565_646.0, rel=0.001)

    def test_optimum_cost_band(self):
        from repro.core.distributed import DistributedConfig

        result = repro.run_optimum(
            repro.build_problem(),
            config=DistributedConfig(accuracy=1e-4, max_iterations=8),
            rng=0,
        )
        # Centralized reference is ~890.7k; the distributed optimum must
        # land within a few percent of it.
        assert 880_000 <= result.cost <= 920_000

    def test_lppm_overhead_band(self):
        from repro.core.distributed import DistributedConfig

        problem = repro.build_problem()
        config = DistributedConfig(accuracy=1e-3, max_iterations=6)
        optimum = repro.run_optimum(problem, config=config, rng=0)
        private = repro.run_lppm(problem, 0.01, config=config, rng=1)
        overhead = private.cost / optimum.cost - 1.0
        # Paper's Fig. 3 anchor: +10.1% at eps = 0.01; we accept 5-20%.
        assert 0.05 <= overhead <= 0.20

    def test_lrfu_band(self):
        problem = repro.build_problem()
        baseline = repro.run_lrfu(problem, rng=2)
        ratio = baseline.cost / problem.max_cost()
        # LRFU saves something but far less than the optimum's ~31%.
        assert 0.6 <= ratio <= 0.95
