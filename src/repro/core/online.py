"""Online (time-slotted) edge caching — the dynamic extension.

The paper's evaluation is a single snapshot; its predecessor system
(Zeng et al., ICDCS 2019, reference [33]) and the trending-video nature
of the workload motivate the *online* setting: demand drifts between
time slots and the operators re-run the distributed algorithm each slot.
Re-optimizing is not free, though — changing a cache means pulling new
contents over the backhaul, so each replaced item is charged a
*switching cost*.

:func:`simulate_online` replays a demand sequence through three
policies:

* ``adaptive`` — re-run Algorithm 1 every ``reoptimize_every`` slots,
  paying switching costs for cache changes;
* ``static`` — solve once on the first slot and never change (zero
  switching cost, increasingly stale policy);
* optionally any mechanism config, making the run privacy-preserving
  slot by slot (the accountant then tracks the *cumulative* budget —
  re-optimization is where composition really bites).

Routing is always re-derived per slot for the *current* cache (a pure
control-plane action with no switching cost), so the comparison isolates
the value of cache adaptation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Union

import numpy as np

from .. import obs
from .._validation import check_nonnegative_float, check_positive_int, rng_from
from ..exceptions import ValidationError
from ..privacy.factory import MechanismConfig
from .cost import total_cost
from .distributed import DistributedConfig, solve_distributed
from .problem import ProblemInstance
from .routing import optimal_routing_for_cache

__all__ = ["OnlineConfig", "SlotRecord", "OnlineResult", "simulate_online"]


@dataclasses.dataclass(frozen=True)
class OnlineConfig:
    """Parameters of the online simulation."""

    reoptimize_every: int = 1
    switch_cost: float = 0.0
    distributed: DistributedConfig = dataclasses.field(
        default_factory=lambda: DistributedConfig(accuracy=1e-3, max_iterations=8)
    )
    privacy: Optional[MechanismConfig] = None

    def __post_init__(self) -> None:
        check_positive_int(self.reoptimize_every, "reoptimize_every")
        check_nonnegative_float(self.switch_cost, "switch_cost")


@dataclasses.dataclass(frozen=True)
class SlotRecord:
    """Per-slot outcome of one policy."""

    slot: int
    serving_cost: float
    switch_cost: float
    cache_changes: int
    reoptimized: bool

    @property
    def total_cost(self) -> float:
        """Serving plus switching cost over the whole horizon."""
        return self.serving_cost + self.switch_cost


@dataclasses.dataclass
class OnlineResult:
    """Full trajectory of one online policy."""

    records: List[SlotRecord]
    epsilon_spent: float = 0.0

    def serving_costs(self) -> np.ndarray:
        """Per-slot serving costs as an array."""
        return np.array([record.serving_cost for record in self.records])

    def total_cost(self) -> float:
        """Serving plus switching cost summed over the whole horizon."""
        return float(sum(record.total_cost for record in self.records))

    def total_switches(self) -> int:
        """Total cache fills performed (including the initial fill)."""
        return sum(record.cache_changes for record in self.records)


def _problem_for_slot(base: ProblemInstance, demand: np.ndarray) -> ProblemInstance:
    demand = np.asarray(demand, dtype=np.float64)
    if demand.shape != (base.num_groups, base.num_files):
        raise ValidationError(
            f"slot demand shape {demand.shape} does not match the base problem "
            f"({base.num_groups}, {base.num_files})"
        )
    return dataclasses.replace(base, demand=demand)


def _cache_changes(previous: Optional[np.ndarray], current: np.ndarray) -> int:
    if previous is None:
        return int(current.sum())  # initial fill
    return int(np.sum((current > 0) & (previous == 0)))


def simulate_online(
    base: ProblemInstance,
    demand_slots: Sequence[np.ndarray],
    config: Optional[OnlineConfig] = None,
    *,
    adaptive: bool = True,
    rng: Union[int, np.random.Generator, None] = None,
) -> OnlineResult:
    """Run the online policy over a demand sequence.

    With ``adaptive=False`` the cache is frozen after slot 0 (the static
    comparator); routing is still re-optimized every slot for the
    current demand.
    """
    if not demand_slots:
        raise ValidationError("demand_slots must be nonempty")
    config = config or OnlineConfig()
    generator = rng_from(rng)
    if obs.enabled():
        obs.emit(
            "run_start",
            run="online",
            slots=len(demand_slots),
            reoptimize_every=config.reoptimize_every,
            switch_cost=config.switch_cost,
            adaptive=adaptive,
            private=config.privacy is not None,
        )

    # Root causal span for the horizon; slot spans nest under it and the
    # inner distributed runs' spans nest under those (ambient tracker).
    run_span = obs.span("run", category="run", slots=len(demand_slots)).start()

    records: List[SlotRecord] = []
    epsilon_spent = 0.0
    caching: Optional[np.ndarray] = None

    for slot, demand in enumerate(demand_slots):
        slot_span = obs.span("slot", category="epoch", slot=slot).start()
        problem = _problem_for_slot(base, demand)
        due = slot % config.reoptimize_every == 0
        reoptimize = caching is None or (adaptive and due)
        routing = None
        if reoptimize:
            child_seed = int(generator.integers(np.iinfo(np.int64).max))
            result = solve_distributed(
                problem, config.distributed, privacy=config.privacy, rng=child_seed
            )
            new_caching = result.solution.caching
            if config.privacy is not None and result.total_epsilon is None:
                # A slot solved under an active privacy config must book
                # its budget: silently skipping it would under-report the
                # composed epsilon for the whole horizon.
                raise ValidationError(
                    f"slot {slot} was solved with an active privacy config but "
                    "returned no epsilon ledger (total_epsilon is None); the "
                    "composed online budget would silently drop this slot"
                )
            if result.total_epsilon is not None:
                epsilon_spent += result.total_epsilon
            if config.privacy is not None:
                # Private runs serve the *reported* (noise-deflated)
                # routing — the whole point of the mechanism is that the
                # coordination layer never sees the exact policy.
                routing = result.solution.routing
        else:
            new_caching = caching
        if routing is None:
            # Routing is re-derived per slot for the current cache (a pure
            # control-plane action) so the non-private comparison isolates
            # the value of cache adaptation rather than routing quality.
            routing = optimal_routing_for_cache(problem, new_caching)
        changes = _cache_changes(caching, new_caching) if reoptimize else 0
        caching = new_caching
        record = SlotRecord(
            slot=slot,
            serving_cost=total_cost(problem, routing),
            switch_cost=config.switch_cost * changes,
            cache_changes=changes,
            reoptimized=reoptimize,
        )
        records.append(record)
        slot_span.annotate(reoptimized=record.reoptimized)
        slot_span.finish()
        obs.emit(
            "slot",
            slot=slot,
            serving_cost=record.serving_cost,
            switch_cost=record.switch_cost,
            cache_changes=record.cache_changes,
            reoptimized=record.reoptimized,
        )
    result = OnlineResult(records=records, epsilon_spent=epsilon_spent)
    run_span.finish()
    if obs.enabled():
        obs.emit(
            "run_end",
            final_cost=result.total_cost(),
            iterations=len(records),
            total_epsilon=(epsilon_spent if config.privacy is not None else None),
            total_switches=result.total_switches(),
        )
    return result
