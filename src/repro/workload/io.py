"""Loading real traces from files.

The evaluation ships with a synthetic stand-in for the paper's private
trace, but a user with an actual request log should be able to plug it
in.  These helpers read view/request counts from the two formats such
logs usually come in:

* CSV — one row per content, with the count in a chosen column
  (header optional);
* JSON — either a plain list of numbers or a mapping
  ``{content_id: count}``.

Both return a :class:`~repro.workload.trace.VideoTrace`, so everything
downstream (scaling, assignment, the whole experiment harness) works
unchanged on real data.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Union

import numpy as np

from ..exceptions import ValidationError
from .trace import VideoTrace

__all__ = ["trace_from_counts", "load_trace_csv", "load_trace_json", "save_trace_csv"]


def trace_from_counts(counts, *, window_minutes: float = 30.0) -> VideoTrace:
    """Build a trace from raw counts (sorted most-viewed first)."""
    counts = np.asarray(counts, dtype=np.float64).ravel()
    if counts.size == 0:
        raise ValidationError("counts must be nonempty")
    if np.any(~np.isfinite(counts)) or np.any(counts < 0):
        raise ValidationError("counts must be finite and nonnegative")
    ordered = np.sort(counts)[::-1]
    return VideoTrace(views=ordered, window_minutes=window_minutes)


def load_trace_csv(
    path: Union[str, pathlib.Path],
    *,
    column: Union[int, str] = -1,
    window_minutes: float = 30.0,
) -> VideoTrace:
    """Read counts from a CSV file.

    ``column`` selects the field holding the count — by index (negative
    allowed) or by header name.  Rows whose selected field is not a
    number are skipped with the exception of the header row, which is
    detected automatically when ``column`` is a name.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"trace file not found: {path}")
    counts = []
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = [row for row in reader if row]
    if not rows:
        raise ValidationError(f"trace file is empty: {path}")
    start = 0
    if isinstance(column, str):
        header = [cell.strip() for cell in rows[0]]
        if column not in header:
            raise ValidationError(
                f"column {column!r} not in header {header} of {path}"
            )
        index = header.index(column)
        start = 1
    else:
        index = column
    for row in rows[start:]:
        try:
            counts.append(float(row[index]))
        except (ValueError, IndexError):
            continue  # non-numeric (e.g. a stray header) or short row
    if not counts:
        raise ValidationError(f"no numeric counts found in {path}")
    return trace_from_counts(counts, window_minutes=window_minutes)


def load_trace_json(
    path: Union[str, pathlib.Path],
    *,
    window_minutes: float = 30.0,
) -> VideoTrace:
    """Read counts from a JSON file (list of numbers or id->count map)."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"trace file not found: {path}")
    with path.open() as handle:
        data = json.load(handle)
    if isinstance(data, dict):
        counts = list(data.values())
    elif isinstance(data, list):
        counts = data
    else:
        raise ValidationError(
            f"JSON trace must be a list or an object, got {type(data).__name__}"
        )
    try:
        numeric = [float(value) for value in counts]
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"non-numeric count in {path}: {exc}") from exc
    return trace_from_counts(numeric, window_minutes=window_minutes)


def save_trace_csv(trace: VideoTrace, path: Union[str, pathlib.Path]) -> None:
    """Write a trace as a two-column CSV (rank, views)."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["rank", "views"])
        for rank, views in enumerate(trace.views, start=1):
            writer.writerow([rank, f"{views:.0f}"])
