#!/usr/bin/env python3
"""Auditing the privacy claim — and what the audit actually finds.

Theorem 4 claims LPPM is ``epsilon``-DP.  This demo runs an empirical
DP audit (max log-likelihood-ratio over histogrammed releases) against
the mechanism and shows three things:

1. **The support finding.**  LPPM's noise interval ``[0, delta * y]``
   depends on the private value ``y``, so the *support* of the release
   moves with the secret: the strict audit reports an unbounded loss
   for every perturbation size.  Pure epsilon-DP does not hold as
   stated — the guarantee that survives is of the (epsilon, delta')
   flavour, with delta' the small boundary mass.
2. **The interior guarantee.**  Restricted to the common support, the
   likelihood ratio is bounded exactly as ``beta = Delta f / epsilon``
   intends: the interior estimate sits well below the claimed budget
   and scales with the neighbour distance.
3. **The audit has teeth.**  A canary mechanism that claims a tight
   budget but adds far too little noise is caught immediately.

Run:  python examples/privacy_audit_demo.py
"""

import numpy as np

from repro.privacy import (
    GaussianPPMConfig,
    GaussianPrivacyMechanism,
    LaplacePrivacyMechanism,
    LPPMConfig,
    audit_mechanism,
)


def show(result, label: str) -> None:
    estimate = "inf" if np.isinf(result.epsilon_hat) else f"{result.epsilon_hat:.3f}"
    verdict = "consistent" if result.consistent else "VIOLATION"
    print(
        f"{label:55s} eps_hat = {estimate:>7} "
        f"(claimed {result.claimed_epsilon:g}) -> {verdict}"
    )


def main() -> None:
    claimed = 2.0

    print("--- 1. strict audit: the support finding ---")
    for delta_neighbour in (0.05, 0.2, 0.5):
        result = audit_mechanism(
            lambda rng: LaplacePrivacyMechanism(LPPMConfig(epsilon=claimed), rng=rng),
            claimed_epsilon=claimed,
            base_value=0.9,
            neighbour_delta=delta_neighbour,
            samples=6000,
            rng=0,
        )
        show(result, f"LPPM, neighbour distance {delta_neighbour}")
    print(
        "   -> the release support [0.45, 0.9] vs [0.45-x, 0.9-x] always has a\n"
        "      distinguishing sliver; Holohan et al.'s bounded Laplace fixes the\n"
        "      output domain to avoid exactly this.\n"
    )

    print("--- 2. interior audit: what beta = Delta/eps controls ---")
    for delta_neighbour in (0.02, 0.05, 0.1):
        result = audit_mechanism(
            lambda rng: LaplacePrivacyMechanism(LPPMConfig(epsilon=claimed), rng=rng),
            claimed_epsilon=claimed,
            base_value=0.9,
            neighbour_delta=delta_neighbour,
            samples=6000,
            interior_only=True,
            rng=1,
        )
        show(result, f"LPPM interior, neighbour distance {delta_neighbour}")
    result = audit_mechanism(
        lambda rng: GaussianPrivacyMechanism(GaussianPPMConfig(epsilon=claimed), rng=rng),
        claimed_epsilon=claimed,
        base_value=0.9,
        neighbour_delta=0.05,
        samples=6000,
        interior_only=True,
        rng=2,
    )
    show(result, "Gaussian interior, neighbour distance 0.05")
    print()

    print("--- 3. the canary: an under-noised mechanism is caught ---")

    class Undernoised:
        """Claims eps = 0.05 but calibrates noise for eps = 50."""

        def __init__(self, rng):
            self._inner = LaplacePrivacyMechanism(LPPMConfig(epsilon=50.0), rng=rng)

        def perturb(self, routing):
            return self._inner.perturb(routing)

    result = audit_mechanism(
        lambda rng: Undernoised(rng),
        claimed_epsilon=0.05,
        base_value=0.9,
        neighbour_delta=0.05,
        samples=6000,
        interior_only=True,
        rng=3,
    )
    show(result, "canary claiming eps=0.05, noised for eps=50")


if __name__ == "__main__":
    main()
