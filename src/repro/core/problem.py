"""Problem model from Section II of the paper.

A :class:`ProblemInstance` bundles every quantity of Table I:

* the demand matrix ``Lambda`` (``lambda[u, f]``, mean request arrival
  rate of MU group ``u`` for content ``f``),
* the binary connectivity matrix ``L`` (``l[n, u]``),
* cache capacities ``C_n`` and bandwidth capacities ``B_n`` per SBS,
* weighted transmission parameters ``d[n, u]`` (SBS to MU) and
  ``d_hat[u]`` (BS to MU).

All contents have unit size as in the paper ("the content can be divided
into blocks with the same size").  The instance is immutable; derived
arrays (savings weights, per-SBS reach) are computed once and cached.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Iterator, Tuple

import numpy as np

from .._validation import (
    as_binary_array,
    as_float_array,
    require,
)
from ..analysis.taint import decl as taint
from ..exceptions import ValidationError

__all__ = ["ProblemInstance"]


taint.source_attribute("demand", "raw per-group demand matrix Lambda (Table I)")

#: Sentinel distinguishing "key absent" from a memoized ``None``.
_MISSING = object()


@dataclasses.dataclass(frozen=True)
class ProblemInstance:
    """Immutable joint caching-and-routing problem instance.

    Parameters
    ----------
    demand:
        ``(U, F)`` array of mean request rates ``lambda[u, f] >= 0``.
        Entries may exceed one: a group of users can request the same
        content many times.
    connectivity:
        ``(N, U)`` binary array; ``connectivity[n, u] == 1`` iff SBS ``n``
        can serve MU group ``u``.
    cache_capacity:
        ``(N,)`` array of cache sizes ``C_n`` (contents have unit size).
    bandwidth:
        ``(N,)`` array of bandwidth capacities ``B_n``.
    sbs_cost:
        ``(N, U)`` array of weighted transmission parameters ``d[n, u]``.
    bs_cost:
        ``(U,)`` array of weighted transmission parameters ``d_hat[u]``
        from the base station.  The paper assumes ``d_hat[u]`` is much
        larger than any ``d[n, u]``; we only require it to be at least as
        large wherever the SBS is connected, so every unit offloaded to an
        SBS weakly reduces cost.
    """

    demand: np.ndarray
    connectivity: np.ndarray
    cache_capacity: np.ndarray
    bandwidth: np.ndarray
    sbs_cost: np.ndarray
    bs_cost: np.ndarray

    def __post_init__(self) -> None:
        demand = as_float_array(self.demand, "demand", ndim=2, nonnegative=True)
        num_groups, num_files = demand.shape
        require(num_groups > 0 and num_files > 0, "demand must be a nonempty (U, F) matrix")
        connectivity = as_binary_array(self.connectivity, "connectivity")
        if connectivity.ndim != 2 or connectivity.shape[1] != num_groups:
            raise ValidationError(
                "connectivity must have shape (N, U) with U matching demand; "
                f"got {connectivity.shape} for U={num_groups}"
            )
        num_sbs = connectivity.shape[0]
        require(num_sbs > 0, "at least one SBS is required")
        cache_capacity = as_float_array(
            self.cache_capacity, "cache_capacity", shape=(num_sbs,), nonnegative=True
        )
        bandwidth = as_float_array(self.bandwidth, "bandwidth", shape=(num_sbs,), nonnegative=True)
        sbs_cost = as_float_array(
            self.sbs_cost, "sbs_cost", shape=(num_sbs, num_groups), nonnegative=True
        )
        bs_cost = as_float_array(self.bs_cost, "bs_cost", shape=(num_groups,), nonnegative=True)
        connected = connectivity > 0
        if np.any(sbs_cost[connected] > bs_cost[np.newaxis, :].repeat(num_sbs, axis=0)[connected]):
            raise ValidationError(
                "bs_cost must dominate sbs_cost on every connected (n, u) pair; "
                "otherwise offloading to the edge could increase cost"
            )
        for array in (demand, connectivity, cache_capacity, bandwidth, sbs_cost, bs_cost):
            array.setflags(write=False)
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "connectivity", connectivity)
        object.__setattr__(self, "cache_capacity", cache_capacity)
        object.__setattr__(self, "bandwidth", bandwidth)
        object.__setattr__(self, "sbs_cost", sbs_cost)
        object.__setattr__(self, "bs_cost", bs_cost)
        object.__setattr__(self, "_derived", {})
        object.__setattr__(self, "_derived_lock", threading.RLock())

    # ------------------------------------------------------------------
    # Derived-quantity cache
    # ------------------------------------------------------------------
    def _cached(self, key: str, factory):
        """Memoize ``factory()`` under ``key`` for this (immutable) instance.

        Derived arrays are marked read-only: they are shared across every
        caller, including the solver hot paths that rely on them never
        changing.  ``dataclasses.replace`` builds a new instance and
        therefore a fresh, empty cache.

        The Jacobi executor (``DistributedConfig(jacobi_workers=N)``) fans
        ``solve_phase`` out over a thread pool, so first touch of any
        derived array can race: the lock makes the check-compute-store
        sequence atomic and guarantees every caller shares the one stored
        (read-only) value.  The fast path stays lock-free — a hit reads an
        already-published immutable entry.
        """
        cache = self._derived
        value = cache.get(key, _MISSING)
        if value is not _MISSING:
            return value
        with self._derived_lock:
            value = cache.get(key, _MISSING)
            if value is _MISSING:
                value = factory()
                if isinstance(value, np.ndarray):
                    value.setflags(write=False)
                cache[key] = value
        return value

    def __getstate__(self):
        """Pickle the field arrays only; the derived cache is rebuilt lazily."""
        return {
            k: v for k, v in self.__dict__.items() if k not in ("_derived", "_derived_lock")
        }

    def __setstate__(self, state):
        """Restore fields (re-frozen) and start with an empty derived cache."""
        for key, value in state.items():
            if isinstance(value, np.ndarray):
                value.setflags(write=False)
            object.__setattr__(self, key, value)
        object.__setattr__(self, "_derived", {})
        object.__setattr__(self, "_derived_lock", threading.RLock())

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_sbs(self) -> int:
        """Number of small base stations ``N``."""
        return self.connectivity.shape[0]

    @property
    def num_groups(self) -> int:
        """Number of MU groups ``U``."""
        return self.demand.shape[0]

    @property
    def num_files(self) -> int:
        """Number of contents ``F``."""
        return self.demand.shape[1]

    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(N, U, F)`` tuple of problem dimensions."""
        return (self.num_sbs, self.num_groups, self.num_files)

    def sbs_indices(self) -> Iterator[int]:
        """Iterate over SBS indices ``0..N-1`` (the Gauss-Seidel order)."""
        return iter(range(self.num_sbs))

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def savings_rate(self) -> np.ndarray:
        """Per-unit-of-``y`` cost saving, an ``(N, U, F)`` array (cached).

        Serving the fraction ``y[n, u, f]`` of demand ``lambda[u, f]``
        from SBS ``n`` instead of the BS saves
        ``(d_hat[u] - d[n, u]) * l[n, u] * lambda[u, f]`` cost units.
        The joint problem is equivalent to maximising
        ``sum(savings_rate * y)``.
        """
        return self._cached(
            "savings_rate",
            lambda: self.savings_margin()[:, :, np.newaxis] * self.demand[np.newaxis, :, :],
        )

    def savings_margin(self) -> np.ndarray:
        """``(N, U)`` per-unit saving ``(d_hat[u]-d[n,u]) * l[n,u]`` (cached).

        Because contents have unit size, the value of one unit of SBS
        bandwidth spent on MU group ``u`` depends only on ``u`` and ``n``;
        this is what makes the routing subproblem a fractional knapsack.
        """
        return self._cached(
            "savings_margin",
            lambda: (self.bs_cost[np.newaxis, :] - self.sbs_cost) * self.connectivity,
        )

    def max_cost(self) -> float:
        """Worst-case serving cost ``W`` (the BS serves every request).

        This is the constant ``W = sum_u d_hat[u] * sum_f lambda[u, f]``
        used in Theorem 5 of the paper.
        """
        return self._cached(
            "max_cost", lambda: float(np.sum(self.bs_cost * self.demand.sum(axis=1)))
        )

    def total_demand(self) -> float:
        """Total request volume ``sum(lambda)``."""
        return self._cached("total_demand", lambda: float(self.demand.sum()))

    def group_demand(self) -> np.ndarray:
        """``(U,)`` total demand of each MU group (cached)."""
        return self._cached("group_demand", lambda: self.demand.sum(axis=1))

    def file_popularity(self) -> np.ndarray:
        """``(F,)`` total demand of each content across all groups (cached)."""
        return self._cached("file_popularity", lambda: self.demand.sum(axis=0))

    def demand_flat(self) -> np.ndarray:
        """The demand matrix raveled to ``(U * F,)`` C-order (cached).

        The knapsack-based routing subproblems consume flat views; sharing
        one read-only copy avoids a ravel per dual iteration.
        """
        return self._cached("demand_flat", lambda: self.demand.ravel().copy())

    def cache_slots(self) -> np.ndarray:
        """``(N,)`` integer cache capacities ``floor(C_n)`` (cached).

        The caching subproblem picks whole files, so every solver uses the
        floored capacity; the ``1e-9`` guard absorbs float drift in
        capacities that are conceptually integral.
        """
        return self._cached(
            "cache_slots",
            lambda: np.floor(self.cache_capacity + 1e-9).astype(np.int64),
        )

    def profitable_file_mask(self) -> np.ndarray:
        """``(F,)`` boolean mask of contents with any demand at all (cached)."""
        return self._cached("profitable_file_mask", lambda: self.file_popularity() > 0)

    def potential_routing_mask(self) -> np.ndarray:
        """``(N, U, F)`` mask of triples where routing can reduce cost (cached).

        True where the SBS is connected, demand is positive and the
        savings margin is positive — the caching-independent part of the
        profitable-triple test used by the network-wide routing LP/flow
        solvers.
        """

        def build() -> np.ndarray:
            margin = self.savings_margin()
            return (
                (self.connectivity[:, :, np.newaxis] > 0)
                & (self.demand[np.newaxis, :, :] > 0)
                & (margin[:, :, np.newaxis] > 0)
            )

        return self._cached("potential_routing_mask", build)

    def connectivity_indices(self) -> Tuple[np.ndarray, ...]:
        """Per-SBS index arrays of connected MU groups (cached).

        ``connectivity_indices()[n]`` is ``flatnonzero(connectivity[n])``
        computed once per instance instead of per call.
        """
        return self._cached(
            "connectivity_indices",
            lambda: tuple(
                np.flatnonzero(self.connectivity[n] > 0) for n in range(self.num_sbs)
            ),
        )

    def neighbours_of_sbs(self, sbs: int) -> np.ndarray:
        """Indices of MU groups connected to ``sbs``."""
        self._check_sbs(sbs)
        return self.connectivity_indices()[sbs]

    def sbs_of_group(self, group: int) -> np.ndarray:
        """Indices of SBSs connected to MU group ``group``."""
        if not 0 <= group < self.num_groups:
            raise ValidationError(f"group index {group} out of range [0, {self.num_groups})")
        return np.flatnonzero(self.connectivity[:, group] > 0)

    def num_links(self) -> int:
        """Total number of SBS-MU links (ones in the connectivity matrix)."""
        return self._cached("num_links", lambda: int(self.connectivity.sum()))

    def _check_sbs(self, sbs: int) -> None:
        if not 0 <= sbs < self.num_sbs:
            raise ValidationError(f"SBS index {sbs} out of range [0, {self.num_sbs})")

    # ------------------------------------------------------------------
    # Convenience constructors / transforms
    # ------------------------------------------------------------------
    def with_bandwidth(self, bandwidth) -> "ProblemInstance":
        """Return a copy of this instance with a new bandwidth vector.

        A scalar is broadcast to every SBS.  Used by the Fig. 6 sweep.
        """
        vector = np.broadcast_to(np.asarray(bandwidth, dtype=np.float64), (self.num_sbs,)).copy()
        return dataclasses.replace(self, bandwidth=vector)

    def with_cache_capacity(self, cache_capacity) -> "ProblemInstance":
        """Return a copy of this instance with a new cache-capacity vector."""
        vector = np.broadcast_to(
            np.asarray(cache_capacity, dtype=np.float64), (self.num_sbs,)
        ).copy()
        return dataclasses.replace(self, cache_capacity=vector)

    def with_connectivity(self, connectivity) -> "ProblemInstance":
        """Return a copy of this instance with a new connectivity matrix."""
        return dataclasses.replace(self, connectivity=np.asarray(connectivity, dtype=np.float64))

    def restrict_groups(self, groups) -> "ProblemInstance":
        """Return the sub-instance induced by a subset of MU groups.

        Used by the Fig. 4 sweep (varying the number of MUs) so that the
        same trace and topology can be reused across points.
        """
        index = np.asarray(groups, dtype=np.int64)
        if index.ndim != 1 or index.size == 0:
            raise ValidationError("groups must be a nonempty 1-D index array")
        if np.any(index < 0) or np.any(index >= self.num_groups):
            raise ValidationError("groups contains an out-of-range MU index")
        return ProblemInstance(
            demand=self.demand[index],
            connectivity=self.connectivity[:, index],
            cache_capacity=self.cache_capacity,
            bandwidth=self.bandwidth,
            sbs_cost=self.sbs_cost[:, index],
            bs_cost=self.bs_cost[index],
        )

    def describe(self) -> Dict[str, float]:
        """Return a summary dictionary (useful for logging and reports)."""
        return {
            "num_sbs": self.num_sbs,
            "num_groups": self.num_groups,
            "num_files": self.num_files,
            "num_links": self.num_links(),
            "total_demand": self.total_demand(),
            "total_bandwidth": float(self.bandwidth.sum()),
            "total_cache": float(self.cache_capacity.sum()),
            "max_cost": self.max_cost(),
        }
