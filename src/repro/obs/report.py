"""Dashboard rendering and cross-run regression detection.

Two consumers of the telemetry layer live here:

* :func:`render_dashboard` turns a trace (plus an optional metrics
  registry) into one self-contained static HTML page — convergence
  curves as inline SVG, a per-SBS phase-timing profile, the protocol
  health table and the per-party epsilon ledger.  No external assets,
  no scripts, no timestamps: the page is a deterministic function of
  its inputs, so re-rendering the same trace yields the same bytes.
* :func:`compare_snapshots` diffs two metrics snapshots (or two
  ``BENCH_*.json`` records) under per-metric relative thresholds and
  reports every regression — the machinery behind
  ``repro-report regress``, which CI runs against a committed baseline.

The comparison is directional: the gated families are all
"higher is worse" quantities (cost, epsilon, iterations, retries,
bytes), except ``speedup`` entries in benchmark records, where a
*decrease* regresses.  Boolean benchmark facts (``identical``,
``converged``) may never flip from true to false.
"""

from __future__ import annotations

import html
import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ValidationError
from .metrics import MetricsRegistry
from .recorder import Event
from .trace import RunSummary, summarize_trace

__all__ = [
    "DEFAULT_THRESHOLDS",
    "compare_snapshots",
    "load_snapshot",
    "parse_thresholds",
    "render_dashboard",
]

#: Families gated by default when comparing metrics snapshots, with the
#: relative increase tolerated before a regression is declared.  All are
#: higher-is-worse; timings are deliberately absent (volatile).
DEFAULT_THRESHOLDS: Dict[str, float] = {
    "repro_run_final_cost": 0.0,
    "repro_run_total_epsilon": 0.0,
    "repro_run_iterations": 0.0,
    "repro_run_stale_phases": 0.0,
    "repro_privacy_epsilon_total": 0.0,
    "repro_scheme_cost_total": 0.0,
    "repro_retries_total": 0.0,
    "repro_channel_wire_bytes_total": 0.0,
}


# ----------------------------------------------------------------------
# Regression comparison
# ----------------------------------------------------------------------
def parse_thresholds(spec: str) -> Dict[str, float]:
    """Parse ``name=rel,name=rel`` threshold overrides from the CLI."""
    thresholds: Dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValidationError(
                f"threshold {part!r} is not of the form name=relative_increase"
            )
        name, _, raw = part.partition("=")
        try:
            value = float(raw)
        except ValueError as error:
            raise ValidationError(f"threshold {part!r}: {raw!r} is not a number") from error
        if value < 0:
            raise ValidationError(f"threshold {part!r} must be non-negative")
        thresholds[name.strip()] = value
    return thresholds


def load_snapshot(path: Union[str, Path]) -> Dict[str, Any]:
    """Load one snapshot file (metrics export or ``BENCH_*.json``)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise ValidationError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ValidationError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(payload, dict):
        raise ValidationError(f"{path}: snapshot must be a JSON object")
    return payload


def _flatten_metrics(snapshot: Mapping[str, Any]) -> Dict[str, Tuple[str, float]]:
    """``{series_id: (family, value)}`` for every numeric metrics series."""
    flat: Dict[str, Tuple[str, float]] = {}
    families = snapshot.get("families", {})
    for name in sorted(families):
        family = families[name]
        for row in family.get("series", []):
            labels = row.get("labels", {})
            rendered = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
            series_id = f"{name}{{{rendered}}}" if rendered else name
            if family.get("kind") == "histogram":
                flat[f"{series_id}:sum"] = (name, float(row.get("sum", 0.0)))
                flat[f"{series_id}:count"] = (name, float(row.get("count", 0)))
            else:
                flat[series_id] = (name, float(row.get("value", 0.0)))
    return flat


def _flatten_bench(
    record: Mapping[str, Any], prefix: str = ""
) -> Dict[str, Union[float, bool]]:
    """Dotted-path numeric/bool leaves of a benchmark record.

    The ``machine`` subtree (host facts) and non-scalar leaves are
    skipped — they describe the environment, not the result.
    """
    flat: Dict[str, Union[float, bool]] = {}
    for key in sorted(record):
        if key == "machine":
            continue
        value = record[key]
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten_bench(value, path))
        elif isinstance(value, bool):
            flat[path] = value
        elif isinstance(value, (int, float)):
            flat[path] = float(value)
    return flat


def _relative_increase(baseline: float, candidate: float) -> float:
    """Signed relative change, against a unit scale when baseline is 0."""
    scale = abs(baseline) if baseline != 0 else 1.0
    return (candidate - baseline) / scale


def _matching_threshold(
    thresholds: Mapping[str, float], family: str, series_id: str
) -> Optional[float]:
    if series_id in thresholds:
        return thresholds[series_id]
    return thresholds.get(family)


def compare_snapshots(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Optional[Mapping[str, float]] = None,
) -> Tuple[List[str], List[str]]:
    """Regressions (and informational notes) between two snapshots.

    Both arguments are parsed JSON payloads: either metrics snapshots
    (``metrics_version``/``families``) or ``BENCH_*.json`` records.
    Returns ``(regressions, notes)`` — an empty regression list means
    the candidate is no worse than the baseline under ``thresholds``
    (:data:`DEFAULT_THRESHOLDS` for metrics snapshots when omitted).
    """
    is_metrics = "families" in baseline or "families" in candidate
    if is_metrics:
        return _compare_metrics(baseline, candidate, thresholds)
    return _compare_bench(baseline, candidate, thresholds or {})


def _compare_metrics(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Optional[Mapping[str, float]],
) -> Tuple[List[str], List[str]]:
    gates = dict(DEFAULT_THRESHOLDS if thresholds is None else thresholds)
    base_flat = _flatten_metrics(baseline)
    cand_flat = _flatten_metrics(candidate)
    regressions: List[str] = []
    notes: List[str] = []
    for series_id in sorted(base_flat):
        family, base_value = base_flat[series_id]
        limit = _matching_threshold(gates, family, series_id)
        if limit is None:
            continue
        if series_id not in cand_flat:
            notes.append(f"{series_id}: present in baseline only")
            continue
        cand_value = cand_flat[series_id][1]
        increase = _relative_increase(base_value, cand_value)
        if increase > limit:
            regressions.append(
                f"{series_id}: {base_value:g} -> {cand_value:g} "
                f"(+{100 * increase:.3g}% > {100 * limit:g}% allowed)"
            )
    for series_id in sorted(set(cand_flat) - set(base_flat)):
        family = cand_flat[series_id][0]
        if _matching_threshold(gates, family, series_id) is not None:
            notes.append(f"{series_id}: new in candidate")
    return regressions, notes


def _compare_bench(
    baseline: Mapping[str, Any],
    candidate: Mapping[str, Any],
    thresholds: Mapping[str, float],
) -> Tuple[List[str], List[str]]:
    base_flat = _flatten_bench(baseline)
    cand_flat = _flatten_bench(candidate)
    regressions: List[str] = []
    notes: List[str] = []
    for path in sorted(base_flat):
        base_value = base_flat[path]
        if path not in cand_flat:
            notes.append(f"{path}: present in baseline only")
            continue
        cand_value = cand_flat[path]
        if isinstance(base_value, bool) or isinstance(cand_value, bool):
            if bool(base_value) and not bool(cand_value):
                regressions.append(f"{path}: flipped true -> false")
            continue
        leaf = path.rsplit(".", 1)[-1]
        limit = thresholds.get(path, thresholds.get(leaf))
        if limit is None:
            continue
        if "speedup" in leaf:
            decrease = _relative_increase(cand_value, base_value)
            if decrease > limit:
                regressions.append(
                    f"{path}: speedup {base_value:g} -> {cand_value:g} "
                    f"(-{100 * decrease:.3g}% > {100 * limit:g}% allowed)"
                )
        else:
            increase = _relative_increase(base_value, cand_value)
            if increase > limit:
                regressions.append(
                    f"{path}: {base_value:g} -> {cand_value:g} "
                    f"(+{100 * increase:.3g}% > {100 * limit:g}% allowed)"
                )
    return regressions, notes


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------
_PAGE_STYLE = """
body { font-family: Georgia, 'Times New Roman', serif; margin: 2rem auto;
       max-width: 64rem; color: #1a1a1a; background: #fbfaf8; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #1a1a1a; padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .92rem; }
th, td { border: 1px solid #c8c2b8; padding: .3rem .7rem; text-align: right; }
th { background: #efece6; }
td.k, th.k { text-align: left; }
.note { color: #6b6558; font-size: .88rem; }
svg { background: #ffffff; border: 1px solid #c8c2b8; }
.bar { fill: #5b7b9a; }
pre { background: #f2efe9; border: 1px solid #c8c2b8; padding: .6rem;
      overflow-x: auto; font-size: .8rem; }
"""


def _fmt(value: Optional[float]) -> str:
    if value is None:
        return "—"
    return f"{value:,.6g}"


def _svg_curve(curve: Sequence[float], *, width: int = 560, height: int = 180) -> str:
    """Inline SVG polyline of one convergence curve."""
    if len(curve) < 2:
        return '<p class="note">curve has fewer than two points</p>'
    low, high = min(curve), max(curve)
    span = (high - low) or 1.0
    margin = 12.0
    step = (width - 2 * margin) / (len(curve) - 1)
    points = " ".join(
        f"{margin + i * step:.1f},"
        f"{height - margin - (value - low) / span * (height - 2 * margin):.1f}"
        for i, value in enumerate(curve)
    )
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}" '
        'role="img" aria-label="convergence curve">'
        f'<polyline fill="none" stroke="#5b7b9a" stroke-width="2" points="{points}"/>'
        f'<text x="{margin}" y="{margin}" font-size="11" fill="#6b6558">'
        f"max {_fmt(high)}</text>"
        f'<text x="{margin}" y="{height - 2}" font-size="11" fill="#6b6558">'
        f"min {_fmt(low)}</text>"
        "</svg>"
    )


def _timing_profile(events: Sequence[Event]) -> List[Tuple[str, int, float]]:
    """Per-SBS ``(sbs, phases, total_solve_seconds)`` rows, sorted by SBS."""
    totals: Dict[str, Tuple[int, float]] = {}
    for event in events:
        if event.get("type") != "phase" or event.get("solve_seconds") is None:
            continue
        sbs = str(event.get("sbs", "-"))
        count, seconds = totals.get(sbs, (0, 0.0))
        totals[sbs] = (count + 1, seconds + float(event["solve_seconds"]))
    return [(sbs, *totals[sbs]) for sbs in sorted(totals, key=lambda s: (len(s), s))]


def _epsilon_ledger(summaries: Sequence[RunSummary]) -> Dict[str, float]:
    ledger: Dict[str, float] = {}
    for summary in summaries:
        for party, epsilon in summary.epsilon_by_party.items():
            ledger[party] = ledger.get(party, 0.0) + epsilon
    return ledger


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    head = "".join(
        f'<th class="k">{html.escape(h)}</th>' if i == 0 else f"<th>{html.escape(h)}</th>"
        for i, h in enumerate(headers)
    )
    body = []
    for row in rows:
        cells = "".join(
            f'<td class="k">{cell}</td>' if i == 0 else f"<td>{cell}</td>"
            for i, cell in enumerate(row)
        )
        body.append(f"<tr>{cells}</tr>")
    return f"<table><tr>{head}</tr>{''.join(body)}</table>"


def render_dashboard(
    events: List[Event],
    registry: Optional[MetricsRegistry] = None,
    *,
    title: str = "repro run report",
) -> str:
    """One self-contained HTML dashboard for a trace (+ optional metrics).

    Sections: run overview, per-run convergence curve (inline SVG),
    per-SBS phase timing profile (present only when the trace was
    recorded with timings on), protocol health, epsilon ledger, and —
    when a registry is supplied — the full Prometheus-text exposition
    in an appendix.  The output is a pure function of the inputs.
    """
    summaries = summarize_trace(events)
    parts: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{html.escape(title)}</title>",
        f"<style>{_PAGE_STYLE}</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    if not summaries:
        parts.append('<p class="note">No runs recorded in this trace.</p>')
    else:
        parts.append("<h2>Run overview</h2>")
        parts.append(
            _table(
                ["run", "iterations", "converged", "final cost", "epsilon",
                 "phases", "retries", "stale"],
                [
                    [
                        html.escape(s.run),
                        str(s.iterations),
                        "—" if s.converged is None else str(bool(s.converged)).lower(),
                        _fmt(s.reported_final_cost),
                        _fmt(s.reported_total_epsilon),
                        str(s.phases),
                        str(s.retries),
                        str(s.stale_phases),
                    ]
                    for s in summaries
                ],
            )
        )
        parts.append("<h2>Convergence</h2>")
        for index, summary in enumerate(summaries):
            curve = summary.convergence_curve
            parts.append(
                f'<p class="k">run {index} ({html.escape(summary.run)}) — '
                f"{len(curve)} points</p>"
            )
            parts.append(_svg_curve(curve))

    timing_rows = _timing_profile(events)
    parts.append("<h2>Phase timing profile</h2>")
    if timing_rows:
        total_seconds = sum(seconds for _, _, seconds in timing_rows) or 1.0
        parts.append(
            _table(
                ["sbs", "phases", "solve seconds", "share"],
                [
                    [
                        html.escape(sbs),
                        str(count),
                        f"{seconds:.6f}",
                        f"{100 * seconds / total_seconds:.1f}%",
                    ]
                    for sbs, count, seconds in timing_rows
                ],
            )
        )
    else:
        parts.append(
            '<p class="note">No solve timings in this trace — record with '
            "timings enabled (the default for <code>obs.recording</code>) "
            "to profile phases.</p>"
        )

    parts.append("<h2>Protocol health</h2>")
    protocol_rows = []
    for index, summary in enumerate(summaries):
        for name, count in sorted(summary.protocol_counts.items()):
            protocol_rows.append([f"run {index} ({html.escape(summary.run)})",
                                  html.escape(name), str(count)])
    if protocol_rows:
        parts.append(_table(["run", "event", "count"], protocol_rows))
    else:
        parts.append(
            '<p class="note">No protocol events — the run saw no retries, '
            "drops, degradations or crashes.</p>"
        )

    parts.append("<h2>Epsilon ledger</h2>")
    ledger = _epsilon_ledger(summaries)
    if ledger:
        parts.append(
            _table(
                ["party", "epsilon booked"],
                [[html.escape(party), _fmt(ledger[party])] for party in sorted(ledger)],
            )
        )
    else:
        parts.append('<p class="note">No privacy releases in this trace.</p>')

    if registry is not None:
        parts.append("<h2>Metrics appendix</h2>")
        parts.append("<details><summary>Prometheus exposition</summary>")
        parts.append(f"<pre>{html.escape(registry.to_prometheus())}</pre></details>")

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"
