"""Dense two-phase primal simplex solver.

Solves linear programs in the inequality form::

    min   c @ z
    s.t.  A_ub @ z <= b_ub
          A_eq @ z == b_eq
          0 <= z <= upper        (upper may contain +inf)

by converting to standard form (slack variables for inequalities, and an
explicit upper-bound row per finitely-bounded variable) and running a
two-phase tableau simplex with Bland's anti-cycling rule.

This implementation targets the small-to-medium instances used in the
unit tests and the per-SBS subproblems; the experiment harness defaults
to the ``scipy`` (HiGHS) backend in :mod:`repro.solvers.lp` for the big
relaxations, and the two are cross-checked against each other in the
test suite.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple

import numpy as np

from .._validation import ArrayLike

from ..exceptions import InfeasibleError, SolverError, UnboundedError, ValidationError

__all__ = ["SimplexResult", "simplex_solve"]

_EPS = 1e-9


@dataclasses.dataclass(frozen=True)
class SimplexResult:
    """Optimal point and value of an LP solved by :func:`simplex_solve`."""

    x: np.ndarray
    objective: float
    iterations: int


def _to_standard_form(
    c: ArrayLike,
    a_ub: Optional[ArrayLike],
    b_ub: Optional[ArrayLike],
    a_eq: Optional[ArrayLike],
    b_eq: Optional[ArrayLike],
    upper: Optional[ArrayLike],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (c, A, b) for ``min c@z s.t. A z = b, z >= 0``."""
    c = np.asarray(c, dtype=np.float64).ravel()
    n = c.size
    rows = []
    if a_ub is not None:
        a_ub = np.asarray(a_ub, dtype=np.float64)
        b_ub = np.asarray(b_ub, dtype=np.float64).ravel()
        if a_ub.shape != (b_ub.size, n):
            raise ValidationError(
                f"A_ub shape {a_ub.shape} inconsistent with c ({n}) and b_ub ({b_ub.size})"
            )
        rows.append(("ub", a_ub, b_ub))
    if a_eq is not None:
        a_eq = np.asarray(a_eq, dtype=np.float64)
        b_eq = np.asarray(b_eq, dtype=np.float64).ravel()
        if a_eq.shape != (b_eq.size, n):
            raise ValidationError(
                f"A_eq shape {a_eq.shape} inconsistent with c ({n}) and b_eq ({b_eq.size})"
            )
        rows.append(("eq", a_eq, b_eq))
    if upper is not None:
        upper = np.asarray(upper, dtype=np.float64).ravel()
        if upper.size != n:
            raise ValidationError(f"upper bound vector has size {upper.size}, expected {n}")
        finite = np.flatnonzero(np.isfinite(upper))
        if np.any(upper[finite] < 0):
            raise ValidationError("upper bounds must be nonnegative")
        if finite.size:
            bound_rows = np.zeros((finite.size, n))
            bound_rows[np.arange(finite.size), finite] = 1.0
            rows.append(("ub", bound_rows, upper[finite]))

    num_slack = sum(block.shape[0] for kind, block, _ in rows if kind == "ub")
    num_rows = sum(block.shape[0] for _, block, _ in rows)
    a = np.zeros((num_rows, n + num_slack))
    b = np.zeros(num_rows)
    row_offset = 0
    slack_offset = n
    for kind, block, block_rhs in rows:
        m = block.shape[0]
        a[row_offset : row_offset + m, :n] = block
        b[row_offset : row_offset + m] = block_rhs
        if kind == "ub":
            a[row_offset : row_offset + m, slack_offset : slack_offset + m] = np.eye(m)
            slack_offset += m
        row_offset += m
    c_full = np.concatenate([c, np.zeros(num_slack)])
    # Make every right-hand side nonnegative for phase 1.
    negative = b < 0
    a[negative] *= -1.0
    b[negative] *= -1.0
    return c_full, a, b, n


def _pivot(tableau: np.ndarray, basis: np.ndarray, row: int, col: int) -> None:
    tableau[row] /= tableau[row, col]
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > 0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(tableau: np.ndarray, basis: np.ndarray, num_cols: int, max_iter: int) -> int:
    """Run the simplex loop on a tableau whose last row holds reduced costs.

    Returns the number of iterations performed.  Raises
    :class:`UnboundedError` when a column can decrease the objective
    without bound and :class:`SolverError` on iteration exhaustion.
    Bland's rule (smallest eligible index) guarantees termination.
    """
    iterations = 0
    while True:
        reduced = tableau[-1, :num_cols]
        eligible = np.flatnonzero(reduced < -_EPS)
        if eligible.size == 0:
            return iterations
        col = int(eligible[0])  # Bland's rule
        column = tableau[:-1, col]
        positive = column > _EPS
        if not np.any(positive):
            raise UnboundedError("LP is unbounded below")
        ratios = np.full(column.shape, np.inf)
        ratios[positive] = tableau[:-1, -1][positive] / column[positive]
        best = np.min(ratios)
        # Bland's rule on the leaving variable: among argmin rows pick the
        # one whose basic variable has the smallest index.
        candidates = np.flatnonzero(ratios <= best + _EPS)
        row = int(candidates[np.argmin(basis[candidates])])
        _pivot(tableau, basis, row, col)
        iterations += 1
        if iterations > max_iter:
            raise SolverError(f"simplex exceeded {max_iter} iterations")


def simplex_solve(
    c: ArrayLike,
    a_ub: Optional[ArrayLike] = None,
    b_ub: Optional[ArrayLike] = None,
    a_eq: Optional[ArrayLike] = None,
    b_eq: Optional[ArrayLike] = None,
    upper: Optional[ArrayLike] = None,
    *,
    max_iter: int = 50_000,
) -> SimplexResult:
    """Solve the LP described in the module docstring.

    Raises
    ------
    InfeasibleError
        If no point satisfies the constraints.
    UnboundedError
        If the objective is unbounded below on the feasible set.
    """
    c_full, a, b, num_original = _to_standard_form(c, a_ub, b_ub, a_eq, b_eq, upper)
    num_rows, num_cols = a.shape

    # ---------------- Phase 1: find a basic feasible solution ----------
    tableau = np.zeros((num_rows + 1, num_cols + num_rows + 1))
    tableau[:num_rows, :num_cols] = a
    tableau[:num_rows, num_cols : num_cols + num_rows] = np.eye(num_rows)
    tableau[:num_rows, -1] = b
    basis = np.arange(num_cols, num_cols + num_rows)
    # Phase-1 objective: sum of artificials == sum of rows (after eliminating).
    tableau[-1, : num_cols + num_rows] = -tableau[:num_rows, : num_cols + num_rows].sum(axis=0)
    tableau[-1, num_cols : num_cols + num_rows] = 0.0
    tableau[-1, -1] = -b.sum()
    iters1 = _run_simplex(tableau, basis, num_cols + num_rows, max_iter)
    if tableau[-1, -1] < -1e-7 * max(1.0, np.abs(b).max(initial=1.0)):
        raise InfeasibleError(f"LP infeasible (phase-1 residual {-tableau[-1, -1]:.3e})")

    # Drive any artificial variables out of the basis.
    for row in range(num_rows):
        if basis[row] >= num_cols:
            pivot_candidates = np.flatnonzero(np.abs(tableau[row, :num_cols]) > _EPS)
            if pivot_candidates.size:
                _pivot(tableau, basis, row, int(pivot_candidates[0]))
            # Otherwise the row is redundant (all-zero over real columns);
            # its artificial stays basic at value zero, which is harmless.

    # ---------------- Phase 2: optimize the real objective -------------
    phase2 = np.zeros((num_rows + 1, num_cols + 1))
    phase2[:num_rows, :num_cols] = tableau[:num_rows, :num_cols]
    phase2[:num_rows, -1] = tableau[:num_rows, -1]
    phase2[-1, :num_cols] = c_full
    for row in range(num_rows):
        col = basis[row]
        if col < num_cols and abs(phase2[-1, col]) > 0:
            phase2[-1] -= phase2[-1, col] * phase2[row]
    # Block leftover artificial basics (they sit at value zero) by treating
    # their reduced costs as nonnegative; they have no column in phase 2.
    iters2 = _run_simplex(phase2, basis, num_cols, max_iter)

    solution = np.zeros(num_cols)
    for row in range(num_rows):
        if basis[row] < num_cols:
            solution[basis[row]] = phase2[row, -1]
    x = solution[:num_original]
    return SimplexResult(x=x, objective=float(np.asarray(c, dtype=np.float64).ravel() @ x), iterations=iters1 + iters2)
