"""Numerical-safety rules: float equality, mutable defaults, bare except.

* ``float-equality`` — ``==`` / ``!=`` against a float literal is almost
  always wrong on computed values (use ``math.isclose`` /
  ``np.isclose`` or the snapping helpers in :mod:`repro._validation`).
  The ``repro._validation`` module itself is exempt: its tolerance
  helpers compare *snapped* values by design.
* ``mutable-default-arg`` — a ``list``/``dict``/``set`` default is
  evaluated once at definition time and shared across calls; use
  ``None`` and construct inside the body.
* ``no-bare-except`` — ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` and hides real failures; catch a concrete exception
  type (or at minimum ``Exception``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

__all__ = ["FloatEquality", "MutableDefaultArg", "NoBareExcept"]


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@register
class FloatEquality(Rule):
    """Flag exact ``==`` / ``!=`` comparisons against float literals."""

    code = "REPRO301"
    name = "float-equality"
    summary = "exact float ==/!= on computed values; use isclose or tolerance helpers"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag Compare nodes mixing Eq/NotEq with a float-literal operand."""
        if ctx.module == "repro._validation":
            return  # the tolerance helpers compare snapped values by design
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_float_literal(left) or _is_float_literal(right):
                    yield self.finding(
                        ctx,
                        node,
                        "exact float comparison; use math.isclose/np.isclose or the "
                        "repro._validation snapping helpers (pragma if the operand "
                        "is a user-set constant, not a computed value)",
                    )
                    break


@register
class MutableDefaultArg(Rule):
    """Flag mutable default argument values."""

    code = "REPRO302"
    name = "mutable-default-arg"
    summary = "list/dict/set defaults are shared across calls"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag list/dict/set literals (or constructor calls) as defaults."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                default for default in node.args.kw_defaults if default is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in `{node.name}(...)` is evaluated once and "
                        "shared across calls; default to None and build it in the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "dict", "set", "bytearray")
        )


@register
class NoBareExcept(Rule):
    """Flag bare ``except:`` handlers."""

    code = "REPRO303"
    name = "no-bare-except"
    summary = "bare except swallows KeyboardInterrupt/SystemExit and hides bugs"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag ExceptHandler nodes with no exception type."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit too; name "
                    "the exception type (at minimum `except Exception:`)",
                )
