"""Command-line entry point: ``repro-report <subcommand> ...``.

Three subcommands on top of the telemetry layer::

    repro-report render trace.jsonl --out report.html
    repro-report metrics trace.jsonl [--format json|prom] [--deterministic]
    repro-report regress baseline.json candidate.json [--thresholds a=0.01,b=0]

``render`` writes the self-contained HTML dashboard (convergence
curves, phase timing profile, protocol health, epsilon ledger) derived
from a trace.  ``metrics`` materializes the trace's metrics snapshot —
the same bytes a live :func:`repro.obs.metering` run would export —
as JSON or Prometheus text; ``--deterministic`` drops the wall-clock
``*seconds*`` families so the output can serve as a byte-comparable
baseline.  ``regress`` compares two snapshots (metrics exports or
``BENCH_*.json`` records) and exits nonzero on any regression — the CI
telemetry job gates on it.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..exceptions import ValidationError
from .derive import derive_metrics
from .report import compare_snapshots, load_snapshot, parse_thresholds, render_dashboard
from .trace import TraceReader

__all__ = ["main"]


def _read_trace(path: str) -> TraceReader:
    try:
        return TraceReader(path)
    except OSError as error:
        raise SystemExit(f"repro-report: cannot read {path}: {error}")
    except ValidationError as error:
        raise SystemExit(f"repro-report: {error}")


def _cmd_render(args: argparse.Namespace) -> int:
    reader = _read_trace(args.trace)
    registry = derive_metrics(reader.events)
    page = render_dashboard(reader.events, registry, title=args.title)
    out = Path(args.out)
    out.write_text(page, encoding="utf-8")
    print(f"wrote {out} ({len(page)} bytes, {len(reader.events)} events)")
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    reader = _read_trace(args.trace)
    registry = derive_metrics(reader.events)
    if args.format == "prom":
        rendered = registry.to_prometheus()
    else:
        rendered = registry.to_json(deterministic_only=args.deterministic)
    if args.out:
        Path(args.out).write_text(rendered, encoding="utf-8")
        print(f"wrote {args.out}")
    else:
        print(rendered, end="")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    try:
        baseline = load_snapshot(args.baseline)
        candidate = load_snapshot(args.candidate)
        thresholds = parse_thresholds(args.thresholds) if args.thresholds else None
        regressions, notes = compare_snapshots(baseline, candidate, thresholds)
    except ValidationError as error:
        print(f"repro-report: {error}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"NOTE: {note}")
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}")
        print(
            f"{len(regressions)} regression(s): {args.candidate} is worse "
            f"than {args.baseline}"
        )
        return 1
    print(f"OK: {args.candidate} is no worse than {args.baseline}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Render telemetry dashboards and gate cross-run regressions.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    render = subparsers.add_parser(
        "render", help="render a trace as a self-contained HTML dashboard"
    )
    render.add_argument("trace", help="path to a JSONL trace")
    render.add_argument(
        "--out", default="report.html", metavar="PATH", help="output HTML file"
    )
    render.add_argument(
        "--title", default="repro run report", help="page title of the dashboard"
    )
    render.set_defaults(handler=_cmd_render)

    metrics = subparsers.add_parser(
        "metrics", help="derive a metrics snapshot from a trace, offline"
    )
    metrics.add_argument("trace", help="path to a JSONL trace")
    metrics.add_argument(
        "--format",
        choices=("json", "prom"),
        default="json",
        help="snapshot encoding (default: json)",
    )
    metrics.add_argument(
        "--deterministic",
        action="store_true",
        help="drop wall-clock *seconds* families (byte-comparable baseline)",
    )
    metrics.add_argument(
        "--out", default=None, metavar="PATH", help="write to a file instead of stdout"
    )
    metrics.set_defaults(handler=_cmd_metrics)

    regress = subparsers.add_parser(
        "regress", help="compare two snapshots; exit nonzero on regression"
    )
    regress.add_argument("baseline", help="baseline snapshot (metrics or BENCH json)")
    regress.add_argument("candidate", help="candidate snapshot of the same kind")
    regress.add_argument(
        "--thresholds",
        default=None,
        metavar="NAME=REL,...",
        help="per-metric relative increase tolerated before failing "
        "(default: the built-in higher-is-worse families, exact)",
    )
    regress.set_defaults(handler=_cmd_regress)

    args = parser.parse_args(argv)
    result: int = args.handler(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
