"""Mechanism comparison: Laplace (LPPM) vs Gaussian vs private caching.

The paper implements the Laplace mechanism and names the exponential and
Gaussian mechanisms as standard alternatives (Section IV-B); its
conclusion lists "other privacy preserving mechanisms" as future work.
This benchmark quantifies the trade-offs on the default scenario:

* cost overhead of Laplace vs Gaussian noise at equal epsilon (the
  Gaussian buys an ``(epsilon, delta')`` guarantee at a different noise
  shape);
* utility of exponential-mechanism private cache selection vs the
  noiseless greedy cache.
"""

import numpy as np

from repro.core.distributed import DistributedConfig, solve_distributed
from repro.core.routing import optimal_routing_for_cache
from repro.core.cost import total_cost
from repro.experiments.config import build_problem
from repro.privacy.exponential import private_cache_selection
from repro.privacy.gaussian import GaussianPPMConfig
from repro.privacy.mechanism import LPPMConfig

from _helpers import save_result

FAST = DistributedConfig(accuracy=1e-3, max_iterations=6)


def test_mechanism_comparison(benchmark):
    problem = build_problem()

    def run_all():
        optimum = solve_distributed(problem, FAST).cost
        rows = {"noiseless": optimum}
        # The Gaussian's analytic sigma is ~5x the Laplace beta at equal
        # epsilon, so its noise stays interval-saturated until much
        # larger budgets; compare at 0.1 vs 100 to span the transition.
        for epsilon in (0.1, 100.0):
            laplace = solve_distributed(
                problem, FAST, privacy=LPPMConfig(epsilon=epsilon), rng=1
            ).cost
            gaussian = solve_distributed(
                problem, FAST, privacy=GaussianPPMConfig(epsilon=epsilon), rng=1
            ).cost
            rows[f"laplace_eps_{epsilon}"] = laplace
            rows[f"gaussian_eps_{epsilon}"] = gaussian
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    noiseless = rows["noiseless"]
    # Both mechanisms cost more than the noiseless optimum, less than W.
    for name, cost in rows.items():
        if name != "noiseless":
            assert cost >= noiseless - 1e-6
            assert cost < problem.max_cost()
    # More budget helps both mechanisms.
    assert rows["laplace_eps_100.0"] <= rows["laplace_eps_0.1"] + 1e-6
    assert rows["gaussian_eps_100.0"] <= rows["gaussian_eps_0.1"] + 1e-6
    # At equal epsilon the Gaussian is noisier (its analytic sigma
    # carries the sqrt(2 ln(1.25/delta')) factor), hence at least as
    # costly up to run-to-run noise.
    assert rows["gaussian_eps_100.0"] >= rows["laplace_eps_100.0"] * 0.98

    lines = [
        f"{name}: cost {cost:,.0f} ({100 * (cost / noiseless - 1):+.1f}% vs noiseless)"
        for name, cost in rows.items()
    ]
    save_result("mechanism_comparison", "\n".join(lines))
    benchmark.extra_info.update({k: float(v) for k, v in rows.items()})


def test_private_cache_selection_utility(benchmark):
    """Exponential-mechanism caches: utility vs epsilon."""
    problem = build_problem()

    def sweep():
        rows = {}
        for epsilon in (0.1, 1.0, 10.0, 1e6):
            costs = []
            for seed in range(3):
                caching = np.stack(
                    [
                        private_cache_selection(problem, n, epsilon, rng=seed + 10 * n)
                        for n in range(problem.num_sbs)
                    ]
                )
                routing = optimal_routing_for_cache(problem, caching)
                costs.append(total_cost(problem, routing))
            rows[epsilon] = float(np.mean(costs))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Near-infinite budget recovers (approximately) the greedy cache.
    assert rows[1e6] <= rows[0.1] + 1e-6

    lines = [
        f"eps={epsilon:g}: mean cost {cost:,.0f}" for epsilon, cost in rows.items()
    ]
    save_result("private_cache_selection", "\n".join(lines))
    benchmark.extra_info.update({str(k): float(v) for k, v in rows.items()})
