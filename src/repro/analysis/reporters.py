"""Output formatting for :mod:`repro.analysis` lint runs."""

from __future__ import annotations

import json
from collections import Counter
from typing import List, Sequence

from .findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    findings: Sequence[Finding],
    *,
    files_checked: int,
    grandfathered: int = 0,
    statistics: bool = False,
) -> str:
    """Human-readable report: one row per finding plus a summary line."""
    rows: List[str] = [finding.render() for finding in findings]
    if statistics and findings:
        rows.append("")
        for code, count in sorted(Counter(f"{f.code} [{f.rule}]" for f in findings).items()):
            rows.append(f"{count:5d}  {code}")
    rows.append("")
    noun = "file" if files_checked == 1 else "files"
    summary = f"{len(findings)} finding(s) in {files_checked} {noun} checked"
    if grandfathered:
        summary += f" ({grandfathered} baselined finding(s) suppressed)"
    rows.append(summary)
    return "\n".join(rows).lstrip("\n")


def render_json(
    findings: Sequence[Finding],
    *,
    files_checked: int,
    grandfathered: int = 0,
) -> str:
    """Machine-readable report: ``{"summary": {...}, "findings": [...]}``."""
    payload = {
        "summary": {
            "files_checked": files_checked,
            "findings": len(findings),
            "grandfathered": grandfathered,
        },
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2)
