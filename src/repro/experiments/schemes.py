"""The three schemes compared throughout Section V.

* ``optimum`` — Algorithm 1 without privacy (the paper plots it as
  "Optimum"; Theorem 2 says it reaches the global optimum);
* ``lppm`` — Algorithm 1 with the LPPM mechanism at a given epsilon;
* ``lrfu`` — the classical replacement baseline.

Each scheme runner consumes a :class:`~repro.core.problem.ProblemInstance`
and returns a :class:`SchemeResult` with the serving cost and policy, so
the sweep runner can treat them uniformly.  A ``centralized`` reference
(LP relaxation + rounding) is included for validation plots.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Union

import numpy as np

from ..baselines.lrfu_scheme import LRFUSchemeConfig, solve_lrfu
from ..core.centralized import solve_centralized
from ..core.distributed import DistributedConfig, solve_distributed
from ..core.problem import ProblemInstance
from ..core.solution import Solution
from ..network.faults import FaultConfig
from ..privacy.mechanism import LPPMConfig

__all__ = ["SchemeResult", "run_optimum", "run_lppm", "run_lrfu", "run_centralized", "SCHEMES"]


@dataclasses.dataclass(frozen=True)
class SchemeResult:
    """Uniform scheme output used by the sweep runner."""

    scheme: str
    cost: float
    solution: Solution
    metadata: Dict[str, float] = dataclasses.field(default_factory=dict)


def run_optimum(
    problem: ProblemInstance,
    *,
    config: Optional[DistributedConfig] = None,
    rng: Union[int, np.random.Generator, None] = None,
    faults: Optional[FaultConfig] = None,
) -> SchemeResult:
    """Algorithm 1 without LPPM (the 'Optimum' curve).

    ``faults`` forwards a fault model to
    :func:`~repro.core.distributed.solve_distributed`, switching the run
    onto the fault-tolerant protocol (used by the robustness sweeps).
    """
    result = solve_distributed(problem, config, rng=rng, faults=faults)
    return SchemeResult(
        scheme="optimum",
        cost=result.cost,
        solution=result.solution,
        metadata={
            "iterations": float(result.iterations),
            "converged": float(result.converged),
        },
    )


def run_lppm(
    problem: ProblemInstance,
    epsilon: float,
    *,
    delta: float = 0.5,
    sensitivity: float = 1.0,
    config: Optional[DistributedConfig] = None,
    rng: Union[int, np.random.Generator, None] = None,
    faults: Optional[FaultConfig] = None,
) -> SchemeResult:
    """Algorithm 1 with the LPPM mechanism.

    ``faults`` selects the fault-tolerant protocol, as in
    :func:`run_optimum`.
    """
    privacy = LPPMConfig(epsilon=epsilon, delta=delta, sensitivity=sensitivity)
    result = solve_distributed(problem, config, privacy=privacy, rng=rng, faults=faults)
    metadata = {
        "iterations": float(result.iterations),
        "converged": float(result.converged),
        "epsilon": float(epsilon),
        "delta": float(delta),
        "noise_l1": result.history.total_noise(),
    }
    if result.total_epsilon is not None:
        metadata["epsilon_spent_basic"] = float(result.total_epsilon)
    return SchemeResult(
        scheme="lppm", cost=result.cost, solution=result.solution, metadata=metadata
    )


def run_lrfu(
    problem: ProblemInstance,
    *,
    config: Optional[LRFUSchemeConfig] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> SchemeResult:
    """The LRFU replacement baseline."""
    result = solve_lrfu(problem, config, rng=rng)
    hit_ratio = (
        float(np.mean([stats.hit_ratio for stats in result.cache_stats]))
        if result.cache_stats
        else 0.0
    )
    return SchemeResult(
        scheme="lrfu",
        cost=result.cost(problem),
        solution=result.solution,
        metadata={
            "hit_ratio": hit_ratio,
            "requests": float(result.requests_processed),
            "edge_volume": result.edge_served_volume,
        },
    )


def run_centralized(problem: ProblemInstance) -> SchemeResult:
    """Centralized LP-relaxation reference (validation only)."""
    result = solve_centralized(problem)
    return SchemeResult(
        scheme="centralized",
        cost=result.cost,
        solution=result.solution,
        metadata={
            "lower_bound": result.lower_bound,
            "integrality_gap": result.integrality_gap,
        },
    )


SCHEMES: Dict[str, Callable] = {
    "optimum": run_optimum,
    "lppm": run_lppm,
    "lrfu": run_lrfu,
    "centralized": run_centralized,
}
