"""General convex serving-cost models (Section II-B's full generality).

The paper only requires ``f1`` to be convex and non-decreasing in the
routing variables and ``f2`` convex non-increasing; the evaluation uses
the linear representative.  This module provides the natural nonlinear
instance and the solver machinery it needs:

* :class:`CongestionCostModel` — the linear model plus a per-SBS
  quadratic congestion term ``gamma * (traffic_n)^2 / B_n`` modelling
  transmission power growing superlinearly with radio load (cf. the
  energy models of Poularakis et al., the paper's reference [21]);
* :func:`solve_convex_routing` — one SBS's best-response routing for a
  *convex* local cost, by projected gradient descent in traffic space
  (``z = lambda * y``), where the feasible set ``{0 <= z <= caps_z,
  sum(z) <= B_n}`` is exactly the capped simplex of
  :func:`repro.solvers.projection.project_capped_simplex`.

With ``gamma = 0`` the model reduces to the linear one and the solver
recovers the fractional-knapsack solution — both facts are pinned by the
test suite, along with a cross-check against ``scipy.optimize``.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from .._validation import as_binary_array, as_float_array, check_nonnegative_float
from ..exceptions import ValidationError
from ..solvers.projection import project_capped_simplex
from .cost import bs_serving_cost, sbs_serving_cost
from .problem import ProblemInstance

__all__ = ["CongestionCostModel", "solve_convex_routing"]


@dataclasses.dataclass(frozen=True)
class CongestionCostModel:
    """Linear serving cost plus quadratic per-SBS congestion.

    ``f1(y) = sum_n [ sum_{u,f} d[n,u] y l lambda  +
    gamma * (sum_{u,f} y lambda)^2 / max(B_n, 1) ]`` and the linear
    ``f2``.  ``gamma = 0`` recovers :class:`~repro.core.cost.LinearCostModel`.
    """

    gamma: float = 1.0
    clip_residual: bool = True

    def __post_init__(self) -> None:
        check_nonnegative_float(self.gamma, "gamma")

    def congestion(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """The quadratic congestion term alone."""
        traffic = np.einsum("nuf,uf->n", routing, problem.demand)
        scale = np.maximum(problem.bandwidth, 1.0)
        return float(self.gamma * np.sum(traffic**2 / scale))

    def sbs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Edge cost ``f1`` including congestion."""
        return sbs_serving_cost(problem, routing) + self.congestion(problem, routing)

    def bs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Backhaul cost ``f2`` (linear, clipped residual)."""
        return bs_serving_cost(problem, routing, clip_residual=self.clip_residual)

    def total(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Total serving cost ``f1 + f2``."""
        return self.sbs_cost(problem, routing) + self.bs_cost(problem, routing)

    # ------------------------------------------------------------------
    def traffic_gradient(
        self, problem: ProblemInstance, sbs: int, traffic: np.ndarray
    ) -> np.ndarray:
        """Gradient of SBS ``sbs``'s local cost w.r.t. its traffic vector.

        In traffic space ``z[u, f] = lambda[u, f] * y[u, f]`` the local
        objective is ``sum (d[n,u] - d_hat[u]) * z / 1`` per unit of
        traffic plus the congestion term, so the gradient is
        ``(d - d_hat) + 2 gamma sum(z) / B_n`` per coordinate (for
        connected pairs; disconnected pairs never carry traffic).
        """
        problem._check_sbs(sbs)
        margin = problem.savings_margin()[sbs]  # (U,), = (d_hat - d) * l
        linear = -margin[:, np.newaxis] * np.ones(problem.num_files)
        scale = max(float(problem.bandwidth[sbs]), 1.0)
        congestion = 2.0 * self.gamma * float(traffic.sum()) / scale
        return linear + congestion


def solve_convex_routing(
    problem: ProblemInstance,
    sbs: int,
    cached: np.ndarray,
    caps: np.ndarray,
    model: CongestionCostModel,
    *,
    max_iter: int = 500,
    tol: float = 1e-8,
    step: Optional[float] = None,
) -> np.ndarray:
    """Best-response routing block for a convex local cost.

    Projected gradient descent over the traffic polytope
    ``{0 <= z <= caps * lambda (cached files only), sum z <= B_n}``.
    The step size defaults to ``1 / L`` with ``L`` the congestion
    curvature (the linear part contributes none); with ``gamma = 0`` a
    single projected step from a greedy-informed start already solves
    the LP, and the iteration merely confirms it.

    Returns the ``(U, F)`` routing block ``y = z / lambda``.
    """
    problem._check_sbs(sbs)
    cached = as_binary_array(cached, "cached", shape=(problem.num_files,))
    caps = as_float_array(
        caps, "caps", shape=(problem.num_groups, problem.num_files), nonnegative=True
    )
    demand = problem.demand
    caps_z = (caps * cached[np.newaxis, :] * demand).ravel()
    budget = float(problem.bandwidth[sbs])
    if not np.isfinite(budget) or budget < 0:
        raise ValidationError(f"bandwidth must be finite nonnegative, got {budget}")

    scale = max(budget, 1.0)
    curvature = 2.0 * model.gamma / scale
    if step is None:
        # Lipschitz constant of the gradient is `curvature * dim` in the
        # worst case (rank-one Hessian); a safe, still-fast choice:
        step = 1.0 / max(curvature * max(1.0, 1.0), 1e-3)
        step = min(step, scale)  # keep the first step within the polytope scale

    z = np.zeros(problem.num_groups * problem.num_files)
    previous_value = np.inf
    for _ in range(max_iter):
        gradient = model.traffic_gradient(
            problem, sbs, z
        ).ravel()
        z_new = project_capped_simplex(z - step * gradient, budget, caps_z)
        value = _local_value(problem, sbs, model, z_new)
        if value > previous_value + 1e-9:
            step *= 0.5  # backtrack on overshoot
            if step < 1e-12:
                break
            continue
        shift = float(np.abs(z_new - z).max(initial=0.0))
        z = z_new
        if previous_value - value < tol * max(1.0, abs(value)) and shift < tol * scale:
            previous_value = value
            break
        previous_value = value
    routing = np.zeros_like(demand)
    positive = demand > 0
    routing[positive] = z.reshape(demand.shape)[positive] / demand[positive]
    return np.clip(routing, 0.0, 1.0)


def _local_value(
    problem: ProblemInstance, sbs: int, model: CongestionCostModel, z: np.ndarray
) -> float:
    """Local objective in traffic space (constant BS term dropped)."""
    margin = problem.savings_margin()[sbs]
    z_matrix = z.reshape(problem.num_groups, problem.num_files)
    linear = float(np.sum(-margin[:, np.newaxis] * z_matrix))
    scale = max(float(problem.bandwidth[sbs]), 1.0)
    return linear + model.gamma * float(z.sum()) ** 2 / scale
