"""Overhead of the repro.obs metrics layer.

The telemetry layer inherits the tracing layer's promise: with nothing
active, every solver hook is one module-global ``None`` check, and a
fully *metered* run (trace tee'd into the metrics deriver, timings on)
stays within noise of a bare run.  This benchmark pins both, mirroring
``test_trace_overhead.py``:

* micro — the per-call cost of a no-op :func:`repro.obs.emit` is
  unchanged by the existence of the metrics layer;
* macro — ``obs.metering(trace=...)`` (one emission, two consumers)
  vs the bare solver.
"""

import time

from repro import obs
from repro.core.distributed import DistributedConfig, solve_distributed
from repro.experiments.config import ScenarioConfig, build_problem

from _helpers import save_result

CONFIG = DistributedConfig(accuracy=1e-4, max_iterations=6)
SCENARIO = ScenarioConfig(num_groups=20, num_links=30)


def test_noop_emit_unchanged_by_metrics_layer(benchmark):
    """The disabled fast path stays nanoseconds with metrics importable."""
    assert not obs.enabled()
    calls = 200_000

    def burst():
        for _ in range(calls):
            obs.emit("iteration", iteration=0, cost=0.0)

    benchmark.pedantic(burst, rounds=3, iterations=1)
    start = time.perf_counter()
    burst()
    per_call = (time.perf_counter() - start) / calls
    # Same bar as the tracing layer: a no-op emit is a dict-free early
    # return, far below 5 microseconds even on shared runners.
    assert per_call < 5e-6
    benchmark.extra_info["noop_emit_ns"] = per_call * 1e9
    save_result(
        "metrics_overhead_micro", f"no-op emit: {per_call * 1e9:.0f} ns/call"
    )


def test_metered_run_within_noise_of_bare_run(benchmark, tmp_path):
    """Solver wall-time: bare vs trace + metrics derivation live."""
    problem = build_problem(SCENARIO)

    def timed_run(trace_path=None):
        start = time.perf_counter()
        if trace_path is None:
            solve_distributed(problem, CONFIG, rng=1)
        else:
            with obs.metering(trace=trace_path):
                solve_distributed(problem, CONFIG, rng=1)
        return time.perf_counter() - start

    timed_run()  # warm-up
    bare, metered = [], []
    for index in range(5):
        bare.append(timed_run())
        metered.append(timed_run(tmp_path / f"run-{index}.jsonl"))
    best_bare, best_metered = min(bare), min(metered)

    def report():
        return best_bare, best_metered

    benchmark.pedantic(report, rounds=1, iterations=1)
    ratio = best_metered / best_bare
    lines = [
        f"bare run:    {best_bare * 1e3:.1f} ms (best of {len(bare)})",
        f"metered run: {best_metered * 1e3:.1f} ms (best of {len(metered)})",
        f"metered/bare ratio: {ratio:.3f}",
    ]
    save_result("metrics_overhead_macro", "\n".join(lines))
    benchmark.extra_info.update(
        {"bare_ms": best_bare * 1e3, "metered_ms": best_metered * 1e3, "ratio": ratio}
    )
    # The registry update per event is a couple of dict operations; the
    # subproblem solves dominate.  Loose bound for shared-runner noise.
    assert ratio < 2.0
