"""Routing optimization for a *fixed* caching policy.

Two layers:

* :func:`optimal_routing_for_sbs` — one SBS's best response given the
  aggregate routing of everybody else (the inner problem of ``P_n`` once
  the cache set is fixed).  Because contents have unit size and the cost
  model is linear, this is an exact fractional knapsack.
* :func:`optimal_routing_for_cache` — the network-wide optimal routing
  for a fixed caching matrix ``x``, i.e. the LP over ``y`` with
  constraints (3) and (4).  Solvable either as a transportation min-cost
  flow (``backend="flow"``) or as an LP (``backend="lp"`` /
  ``backend="scipy"``); the two are cross-checked in the tests.

These are used for primal recovery inside the Lagrangian decomposition,
for rounding repair in the centralized solver, and to give the LRFU
baseline the same routing machinery when a fair comparison is wanted.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import as_binary_array, as_float_array
from ..exceptions import ValidationError
from ..solvers.fractional_knapsack import solve_fractional_knapsack
from ..solvers.lp import solve_lp
from ..solvers.mincostflow import FlowNetwork, min_cost_flow
from .problem import ProblemInstance

__all__ = [
    "residual_caps",
    "optimal_routing_for_sbs",
    "optimal_routing_for_cache",
]


def residual_caps(
    problem: ProblemInstance,
    sbs: int,
    aggregate_others: np.ndarray,
    *,
    out: Optional[np.ndarray] = None,
    validate: bool = True,
) -> np.ndarray:
    """Per-(u, f) upper bounds on ``y[sbs, u, f]`` given the others.

    Constraint (4) leaves SBS ``n`` at most ``1 - y_{-n}[u, f]`` of each
    request; connectivity zeroes the cap for unreachable groups.  The
    aggregate is clipped to ``[0, 1]`` first so a slightly over-serving
    aggregate (possible transiently under the privacy mechanism) never
    produces negative caps.

    ``out`` (a writable ``(U, F)`` float64 buffer) receives the caps in
    place, letting callers that solve per sweep phase — one
    :class:`~repro.core.distributed.SBSAgent` per Gauss-Seidel round —
    reuse one allocation for the whole run.  ``validate=False`` skips the
    array validation for trusted internal callers that already hold a
    conforming float64 aggregate.
    """
    problem._check_sbs(sbs)
    if validate:
        aggregate = as_float_array(
            aggregate_others,
            "aggregate_others",
            shape=(problem.num_groups, problem.num_files),
        )
    else:
        aggregate = aggregate_others
    if out is None:
        out = np.empty((problem.num_groups, problem.num_files))
    np.subtract(1.0, aggregate, out=out)
    np.clip(out, 0.0, 1.0, out=out)
    out *= problem.connectivity[sbs][:, np.newaxis]
    return out


def optimal_routing_for_sbs(
    problem: ProblemInstance,
    sbs: int,
    cached: np.ndarray,
    caps: np.ndarray,
    *,
    extra_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Exact best routing ``y[sbs]`` for a fixed cache set and caps.

    Minimizes ``sum((d[n,u] - d_hat[u]) * l[n,u] * lambda[u,f] + extra) * y``
    subject to the bandwidth budget ``B_n`` and ``0 <= y <= caps`` with
    ``y[u, f] = 0`` for uncached ``f``.  ``extra_cost`` (shape ``(U, F)``)
    lets the Lagrangian decomposition pass the multiplier term
    ``mu[u, f]`` through unchanged.

    Returns a ``(U, F)`` routing block.
    """
    problem._check_sbs(sbs)
    cached = as_binary_array(cached, "cached", shape=(problem.num_files,))
    caps = as_float_array(
        caps, "caps", shape=(problem.num_groups, problem.num_files), nonnegative=True
    )
    margin = problem.savings_margin()[sbs]  # (U,) per-unit saving, >= 0
    costs = -margin[:, np.newaxis] * problem.demand  # (U, F) = c[n,u,f]
    if extra_cost is not None:
        costs = costs + as_float_array(
            extra_cost, "extra_cost", shape=(problem.num_groups, problem.num_files)
        )
    effective_caps = caps * cached[np.newaxis, :]
    result = solve_fractional_knapsack(
        costs.ravel(),
        np.broadcast_to(problem.demand, costs.shape).ravel(),
        float(problem.bandwidth[sbs]),
        effective_caps.ravel(),
    )
    return result.allocation.reshape(problem.num_groups, problem.num_files)


def optimal_routing_for_cache(
    problem: ProblemInstance,
    caching: np.ndarray,
    *,
    backend: str = "lp",
) -> np.ndarray:
    """Network-wide optimal routing for a fixed caching matrix.

    Solves ``min f(y)`` over ``y`` subject to (2) with ``x`` fixed, (3),
    (4) and the box constraints.  Returns the ``(N, U, F)`` routing
    array.

    ``backend="lp"`` builds the LP and lets :func:`repro.solvers.lp.solve_lp`
    choose an engine; ``backend="scipy"`` / ``"simplex"`` force one;
    ``backend="flow"`` solves the equivalent transportation problem with
    the in-house min-cost-flow solver.
    """
    caching = as_binary_array(
        caching, "caching", shape=(problem.num_sbs, problem.num_files)
    )
    if backend == "flow":
        return _routing_by_flow(problem, caching)
    if backend in ("lp", "scipy", "simplex", "auto"):
        lp_backend = "auto" if backend == "lp" else backend
        return _routing_by_lp(problem, caching, lp_backend)
    raise ValidationError(f"unknown routing backend {backend!r}")


def _profitable_triples(problem: ProblemInstance, caching: np.ndarray) -> np.ndarray:
    """Indices ``(n, u, f)`` where routing can reduce cost.

    Requires connectivity, a cached file, positive demand and a positive
    savings margin.
    """
    mask = problem.potential_routing_mask() & (caching[:, np.newaxis, :] > 0)
    return np.argwhere(mask)


def _routing_by_lp(
    problem: ProblemInstance, caching: np.ndarray, backend: str
) -> np.ndarray:
    from scipy import sparse

    triples = _profitable_triples(problem, caching)
    routing = np.zeros(problem.shape)
    if triples.size == 0:
        return routing
    num_vars = triples.shape[0]
    margin = problem.savings_margin()
    n_idx, u_idx, f_idx = triples[:, 0], triples[:, 1], triples[:, 2]
    demand = problem.demand[u_idx, f_idx]
    # Maximize savings == minimize negated savings.
    c = -(margin[n_idx, u_idx] * demand)

    # Bandwidth rows (one per SBS) + unit-demand rows (one per active (u, f)).
    pair_ids: dict = {}
    for k in range(num_vars):
        pair = (int(u_idx[k]), int(f_idx[k]))
        pair_ids.setdefault(pair, len(pair_ids))
    num_rows = problem.num_sbs + len(pair_ids)
    rows = list(n_idx)
    cols = list(range(num_vars))
    vals = list(demand)
    for k in range(num_vars):
        rows.append(problem.num_sbs + pair_ids[(int(u_idx[k]), int(f_idx[k]))])
        cols.append(k)
        vals.append(1.0)
    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(num_rows, num_vars)).tocsr()
    b_ub = np.concatenate([problem.bandwidth, np.ones(len(pair_ids))])
    result = solve_lp(c, a_ub, b_ub, upper=np.ones(num_vars), backend=backend)
    routing[n_idx, u_idx, f_idx] = np.clip(result.x, 0.0, 1.0)
    return routing


def _routing_by_flow(problem: ProblemInstance, caching: np.ndarray) -> np.ndarray:
    triples = _profitable_triples(problem, caching)
    routing = np.zeros(problem.shape)
    if triples.size == 0:
        return routing
    margin = problem.savings_margin()
    pair_ids = {}
    for n, u, f in triples:
        pair_ids.setdefault((int(u), int(f)), len(pair_ids))
    # Node layout: source | SBS nodes | request nodes | sink.
    source = 0
    sbs_base = 1
    pair_base = sbs_base + problem.num_sbs
    sink = pair_base + len(pair_ids)
    network = FlowNetwork(sink + 1)
    for n in range(problem.num_sbs):
        network.add_arc(source, sbs_base + n, float(problem.bandwidth[n]), 0.0)
    for (u, f), pid in pair_ids.items():
        network.add_arc(pair_base + pid, sink, float(problem.demand[u, f]), 0.0)
    arc_of_triple = {}
    for n, u, f in triples:
        pid = pair_ids[(int(u), int(f))]
        arc = network.add_arc(
            sbs_base + int(n),
            pair_base + pid,
            float(problem.demand[u, f]),
            -float(margin[n, u]),
        )
        arc_of_triple[(int(n), int(u), int(f))] = arc
    min_cost_flow(network, source, sink, stop_when_costly=True)
    for (n, u, f), arc in arc_of_triple.items():
        demand = problem.demand[u, f]
        if demand > 0:
            routing[n, u, f] = min(1.0, network.flow_on(arc) / demand)
    return routing
