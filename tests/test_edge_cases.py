"""Edge-case and failure-injection tests across the stack."""


import numpy as np
import pytest

from repro.baselines.lrfu_scheme import LRFUSchemeConfig, solve_lrfu
from repro.core.centralized import solve_centralized, solve_lp_relaxation
from repro.core.distributed import (
    BaseStationAgent,
    DistributedConfig,
    solve_distributed,
)
from repro.core.problem import ProblemInstance
from repro.core.solution import Solution
from repro.exceptions import ProtocolError
from repro.experiments.runner import run_sweep
from repro.network.messaging import Channel, Message, MessageKind


def make_problem(**overrides) -> ProblemInstance:
    args = dict(
        demand=np.array([[4.0, 2.0], [3.0, 1.0]]),
        connectivity=np.array([[1.0, 1.0]]),
        cache_capacity=np.array([1.0]),
        bandwidth=np.array([5.0]),
        sbs_cost=np.ones((1, 2)),
        bs_cost=np.array([50.0, 60.0]),
    )
    args.update(overrides)
    return ProblemInstance(**args)


class TestDegenerateProblems:
    def test_zero_cache_capacity(self):
        problem = make_problem(cache_capacity=np.array([0.0]))
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.cost == pytest.approx(problem.max_cost())
        assert np.all(result.solution.caching == 0.0)

    def test_zero_bandwidth(self):
        problem = make_problem(bandwidth=np.array([0.0]))
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.cost == pytest.approx(problem.max_cost())
        assert np.all(result.solution.routing == 0.0)

    def test_no_connectivity(self):
        problem = make_problem(connectivity=np.array([[0.0, 0.0]]))
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.cost == pytest.approx(problem.max_cost())

    def test_zero_demand(self):
        problem = make_problem(demand=np.zeros((2, 2)))
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.cost == 0.0

    def test_centralized_on_degenerate(self):
        for overrides in (
            dict(cache_capacity=np.array([0.0])),
            dict(bandwidth=np.array([0.0])),
            dict(connectivity=np.array([[0.0, 0.0]])),
        ):
            problem = make_problem(**overrides)
            result = solve_centralized(problem)
            assert result.cost == pytest.approx(problem.max_cost())
            assert result.solution.is_feasible(problem)

    def test_lp_relaxation_on_zero_demand(self):
        problem = make_problem(demand=np.zeros((2, 2)))
        cost, _, _ = solve_lp_relaxation(problem)
        assert cost == pytest.approx(0.0)

    def test_huge_cache_capacity_caps_at_files(self):
        problem = make_problem(cache_capacity=np.array([100.0]))
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.solution.cache_occupancy()[0] <= problem.num_files

    def test_lrfu_zero_bandwidth(self):
        problem = make_problem(bandwidth=np.array([0.0]))
        result = solve_lrfu(problem, LRFUSchemeConfig(stream="deterministic"), rng=0)
        assert result.edge_served_volume == 0.0
        assert result.cost(problem) == pytest.approx(problem.max_cost())

    def test_single_file_problem(self):
        problem = make_problem(
            demand=np.array([[4.0], [3.0]]),
            sbs_cost=np.ones((1, 2)),
            bs_cost=np.array([50.0, 60.0]),
        )
        result = solve_distributed(problem, DistributedConfig(max_iterations=3))
        assert result.solution.is_feasible(problem)
        assert result.cost < problem.max_cost()


class TestProtocolErrors:
    def _bs_with_channel(self, tiny_problem):
        channel = Channel()
        bs = BaseStationAgent(tiny_problem, channel)
        channel.register("sbs-0")
        return channel, bs

    def test_wrong_sender_rejected(self, tiny_problem):
        channel, bs = self._bs_with_channel(tiny_problem)
        channel.register("sbs-9")
        channel.send(
            Message(
                kind=MessageKind.POLICY_UPLOAD,
                sender="sbs-9",
                recipient="bs",
                payload=np.zeros((3, 4)),
                iteration=0,
                phase=0,
            )
        )
        with pytest.raises(ProtocolError, match="expected an upload from sbs-0"):
            bs.collect_upload(0)

    def test_wrong_kind_rejected(self, tiny_problem):
        channel, bs = self._bs_with_channel(tiny_problem)
        channel.send(
            Message(
                kind=MessageKind.CONTROL,
                sender="sbs-0",
                recipient="bs",
                payload=np.zeros((3, 4)),
                iteration=0,
                phase=0,
            )
        )
        with pytest.raises(ProtocolError, match="expected a policy upload"):
            bs.collect_upload(0)

    def test_wrong_shape_rejected(self, tiny_problem):
        channel, bs = self._bs_with_channel(tiny_problem)
        channel.send(
            Message(
                kind=MessageKind.POLICY_UPLOAD,
                sender="sbs-0",
                recipient="bs",
                payload=np.zeros((2, 2)),
                iteration=0,
                phase=0,
            )
        )
        with pytest.raises(ProtocolError, match="wrong shape"):
            bs.collect_upload(0)


class TestRunnerBranches:
    def test_sweep_without_lrfu(self):
        from repro.experiments.config import ScenarioConfig
        from repro.workload.trace import TraceConfig

        scenario = ScenarioConfig(
            num_groups=5,
            num_links=8,
            bandwidth=50.0,
            cache_capacity=3,
            trace=TraceConfig(num_videos=8, head_views=1000.0, tail_views=100.0),
            demand_to_bandwidth=2.0,
        )
        result = run_sweep(
            name="mini",
            x_label="eps",
            x_values=[1.0],
            scenario_of_x=lambda _x: scenario,
            epsilon_of_x=lambda x: float(x),
            seeds=(7,),
            include_lrfu=False,
            distributed_config=DistributedConfig(accuracy=1e-3, max_iterations=3),
        )
        assert result.schemes == ("optimum", "lppm")
        assert "lrfu" not in result.points[0].costs


class TestLRFUSteeringBranches:
    def test_load_balance_steering(self, tiny_problem):
        result = solve_lrfu(
            tiny_problem,
            LRFUSchemeConfig(steering="load_balance", stream="deterministic"),
            rng=0,
        )
        assert result.requests_processed > 0

    def test_load_balance_at_least_as_much_edge_volume(self, tiny_problem):
        """Coordinated steering should serve at least as much volume as
        random steering on average."""
        random_runs = [
            solve_lrfu(
                tiny_problem, LRFUSchemeConfig(steering="random", stream="poisson"), rng=seed
            ).edge_served_volume
            for seed in range(5)
        ]
        balanced_runs = [
            solve_lrfu(
                tiny_problem,
                LRFUSchemeConfig(steering="load_balance", stream="poisson"),
                rng=seed,
            ).edge_served_volume
            for seed in range(5)
        ]
        assert np.mean(balanced_runs) >= np.mean(random_runs) * 0.9


class TestSolutionRepairCorners:
    def test_repair_zero_capacity(self):
        problem = make_problem(cache_capacity=np.array([0.0]))
        bad = Solution(caching=np.ones((1, 2)), routing=np.ones(problem.shape))
        repaired = bad.repaired(problem)
        assert repaired.is_feasible(problem)
        assert repaired.cache_occupancy()[0] == 0.0

    def test_repair_zero_bandwidth(self):
        problem = make_problem(bandwidth=np.array([0.0]))
        bad = Solution(
            caching=np.array([[1.0, 0.0]]),
            routing=np.full(problem.shape, 0.5),
        )
        repaired = bad.repaired(problem)
        assert repaired.is_feasible(problem)
        assert repaired.bandwidth_usage(problem)[0] == pytest.approx(0.0)
