"""Tests for the projected subgradient driver and step schedule."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.solvers.subgradient import StepSchedule, subgradient_ascent


class TestStepSchedule:
    def test_formula(self):
        schedule = StepSchedule(eta0=2.0, alpha=0.5)
        assert schedule(0) == pytest.approx(2.0)
        assert schedule(2) == pytest.approx(1.0)

    def test_diminishing(self):
        schedule = StepSchedule(eta0=1.0, alpha=0.1)
        values = [schedule(k) for k in range(100)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_eta0(self):
        with pytest.raises(ValidationError):
            StepSchedule(eta0=0.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValidationError):
            StepSchedule(alpha=-1.0)


class TestAscent:
    def test_concave_quadratic(self):
        """max -(mu - 3)^2 over mu >= 0: optimum at mu = 3."""

        def oracle(mu):
            value = -((mu[0] - 3.0) ** 2)
            grad = np.array([-2.0 * (mu[0] - 3.0)])
            return value, grad, mu.copy()

        result = subgradient_ascent(
            oracle,
            np.zeros(1),
            schedule=StepSchedule(eta0=0.5, alpha=0.05),
            max_iter=300,
            patience=50,
        )
        assert result.best_dual == pytest.approx(0.0, abs=1e-2)
        assert result.multipliers[0] == pytest.approx(3.0, abs=0.2)

    def test_projection_keeps_nonnegative(self):
        def oracle(mu):
            return -mu.sum(), -np.ones_like(mu), None

        result = subgradient_ascent(oracle, np.ones(3), max_iter=50)
        assert result.multipliers.min() >= 0.0

    def test_history_recorded(self):
        def oracle(mu):
            return 0.0, np.zeros_like(mu), None

        result = subgradient_ascent(oracle, np.zeros(2), max_iter=30, patience=5)
        assert result.converged
        assert len(result.dual_history) == result.iterations

    def test_max_iter_cap(self):
        calls = []

        def oracle(mu):
            calls.append(1)
            return float(len(calls)), np.ones_like(mu), None

        result = subgradient_ascent(oracle, np.zeros(1), max_iter=7, patience=100)
        assert result.iterations == 7
        assert not result.converged

    def test_payload_score_tracks_best_primal(self):
        """best_payload follows the lowest primal score, not the dual."""
        sequence = iter([5.0, 1.0, 3.0])

        def oracle(mu):
            score = next(sequence)
            return -score, np.zeros_like(mu), {"score": score}

        result = subgradient_ascent(
            oracle,
            np.zeros(1),
            max_iter=3,
            patience=100,
            payload_score=lambda payload: payload["score"],
        )
        assert result.best_payload["score"] == 1.0

    def test_shape_mismatch_rejected(self):
        def oracle(mu):
            return 0.0, np.zeros(5), None

        with pytest.raises(ValidationError, match="shape"):
            subgradient_ascent(oracle, np.zeros(2), max_iter=5)

    def test_invalid_controls(self):
        def oracle(mu):
            return 0.0, np.zeros_like(mu), None

        with pytest.raises(ValidationError):
            subgradient_ascent(oracle, np.zeros(1), max_iter=0)
        with pytest.raises(ValidationError):
            subgradient_ascent(oracle, np.zeros(1), tol=-1.0)
