"""The full LRFU baseline *scheme*: replacement caching + greedy serving.

The comparison scheme of Section V: SBS caches are managed online by
LRFU while requests stream in; each request is handled by an
uncoordinated serving rule.  Concretely, for every request in time
order:

1. the request is steered to one connected SBS (uniformly at random by
   default — a replacement-policy deployment has no global cost view);
2. if the SBS has bandwidth left, the request flows *through* it — the
   standard fetch-on-miss cache architecture: the SBS checks its LRFU
   cache, serves a hit from local storage at edge cost, and on a miss
   pulls the content from the BS over the backhaul (BS serving cost)
   while admitting it into the cache;
3. either way the SBS's radio link carries the content, so the request
   consumes its bandwidth (contents have unit size: a request for
   fraction ``w`` of ``lambda[u, f]`` consumes ``w``); once the SBS is
   saturated, further requests fall back to the BS directly and the
   cache is not touched.

Only hits count as edge-served volume in the routing tensor — misses
travel the backhaul and are billed at the BS rate, which is why the
scheme's cost tracks its hit ratio even when traffic is abundant.

``warmup_passes`` extra passes let the caches reach steady state before
the measured pass, matching the paper's use of a 30-minute window of an
ongoing workload rather than a cold start.

The result is distilled into the same :class:`~repro.core.solution.Solution`
shape as the optimizing schemes, so costs are directly comparable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple, Union

import numpy as np

from .._validation import check_in_interval, rng_from
from ..core.problem import ProblemInstance
from ..core.solution import Solution
from ..exceptions import ValidationError
from ..workload.streams import Request, deterministic_stream, poisson_stream
from .lrfu import CacheStats, LRFUCache

__all__ = ["LRFUSchemeConfig", "LRFUSchemeResult", "solve_lrfu"]


@dataclasses.dataclass(frozen=True)
class LRFUSchemeConfig:
    """Parameters of the LRFU baseline simulation.

    ``steering`` selects how a request picks its SBS: ``"random"``
    (each MU associates with a uniformly random connected SBS per
    request — the realistic uncoordinated deployment, and the default)
    or ``"load_balance"`` (most-spare-bandwidth first — a stronger,
    partially coordinated variant used in ablations).
    """

    decay: float = 0.3
    horizon: float = 30.0
    warmup_passes: int = 1
    stream: str = "poisson"  # or "deterministic"
    steering: str = "random"  # or "load_balance"

    def __post_init__(self) -> None:
        check_in_interval(self.decay, "decay", low=0.0, high=1.0)
        if self.horizon <= 0:
            raise ValidationError(f"horizon must be positive, got {self.horizon}")
        if self.warmup_passes < 0:
            raise ValidationError(f"warmup_passes must be >= 0, got {self.warmup_passes}")
        if self.stream not in ("deterministic", "poisson"):
            raise ValidationError(f"stream must be 'deterministic' or 'poisson', got {self.stream!r}")
        if self.steering not in ("random", "load_balance"):
            raise ValidationError(
                f"steering must be 'random' or 'load_balance', got {self.steering!r}"
            )


@dataclasses.dataclass
class LRFUSchemeResult:
    """Realized policy plus per-SBS replacement statistics.

    ``solution.routing`` holds the volumes *actually served* at the edge
    during the measured pass; ``solution.caching`` is the final cache
    snapshot.  Because LRFU rotates its cache over time, a file served
    early may have been evicted by the end of the window, so the static
    pair can transiently violate the coupling ``y <= x`` even though
    every individual service was performed from a then-cached copy.
    Bandwidth (3) and unit-demand (4) always hold.  Use :meth:`cost` for
    the scheme's serving cost.
    """

    solution: Solution
    cache_stats: Tuple[CacheStats, ...]
    requests_processed: int
    edge_served_volume: float

    def cost(self, problem: ProblemInstance) -> float:
        """Realized total serving cost of the measured pass."""
        from ..core.cost import total_cost

        return total_cost(problem, self.solution.routing)


def _request_weights(problem: ProblemInstance, requests: List[Request]) -> np.ndarray:
    """Volume carried by each request: ``lambda[u, f] / count(u, f)``."""
    counts = np.zeros((problem.num_groups, problem.num_files))
    for request in requests:
        counts[request.group, request.file] += 1
    weights = np.zeros(len(requests))
    for index, request in enumerate(requests):
        weights[index] = problem.demand[request.group, request.file] / counts[
            request.group, request.file
        ]
    return weights


def solve_lrfu(
    problem: ProblemInstance,
    config: Optional[LRFUSchemeConfig] = None,
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> LRFUSchemeResult:
    """Simulate the LRFU scheme on the problem's demand; return its policy."""
    config = config or LRFUSchemeConfig()
    generator = rng_from(rng)
    if config.stream == "deterministic":
        requests = deterministic_stream(problem.demand, config.horizon)
    else:
        requests = poisson_stream(problem.demand, config.horizon, rng=generator)
    if not requests:
        return LRFUSchemeResult(
            solution=Solution.zeros(problem),
            cache_stats=tuple(CacheStats() for _ in range(problem.num_sbs)),
            requests_processed=0,
            edge_served_volume=0.0,
        )
    weights = _request_weights(problem, requests)

    caches = [
        LRFUCache(int(np.floor(problem.cache_capacity[n] + 1e-9)), decay=config.decay)
        for n in range(problem.num_sbs)
    ]

    # Warm-up passes: caches learn, nothing is measured.
    for sweep in range(config.warmup_passes):
        offset = sweep * config.horizon
        for index, request in enumerate(requests):
            candidates = problem.sbs_of_group(request.group)
            if candidates.size == 0:
                continue
            # Round-robin steering so every SBS's cache warms up.
            target = int(candidates[index % candidates.size])
            caches[target].access(request.file, request.time + offset)
    for cache in caches:
        cache.stats = CacheStats()  # measure only the final pass

    served = np.zeros(problem.shape)
    remaining = problem.bandwidth.astype(np.float64).copy()
    measured_offset = config.warmup_passes * config.horizon
    edge_volume = 0.0

    for index, request in enumerate(requests):
        weight = weights[index]
        candidates = problem.sbs_of_group(request.group)
        if candidates.size == 0:
            continue
        if config.steering == "random":
            target = int(candidates[generator.integers(candidates.size)])
        else:  # load_balance: most spare bandwidth first
            target = int(candidates[np.argmax(remaining[candidates])])
        if remaining[target] < weight - 1e-12:
            # Saturated SBS: the BS serves the request directly; the
            # content never reaches the edge cache.
            continue
        hit = caches[target].access(request.file, request.time + measured_offset)
        remaining[target] -= weight  # the content flows through the SBS radio
        if hit:
            demand = problem.demand[request.group, request.file]
            served[target, request.group, request.file] += weight / demand
            edge_volume += weight
        # On a miss the content is pulled from the BS over the backhaul
        # (billed at the BS rate, so it does not enter ``served``) and the
        # LRFU cache has admitted it inside ``access`` for future hits.

    caching = np.zeros((problem.num_sbs, problem.num_files))
    for n, cache in enumerate(caches):
        for file in cache.contents:
            caching[n, file] = 1.0
    solution = Solution(caching=caching, routing=np.minimum(served, 1.0))
    return LRFUSchemeResult(
        solution=solution,
        cache_stats=tuple(cache.stats for cache in caches),
        requests_processed=len(requests),
        edge_served_volume=edge_volume,
    )
