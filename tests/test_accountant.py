"""Tests for privacy-budget accounting and composition."""

import math

import pytest

from repro.exceptions import PrivacyError
from repro.privacy.accountant import (
    PrivacyAccountant,
    Release,
    advanced_composition_epsilon,
    per_release_epsilon,
)


class TestComposition:
    def test_basic_sum(self):
        accountant = PrivacyAccountant()
        accountant.record("sbs-0", 0.1)
        accountant.record("sbs-0", 0.2)
        assert accountant.total_epsilon_basic() == pytest.approx(0.3)

    def test_per_party(self):
        accountant = PrivacyAccountant()
        accountant.record("sbs-0", 0.1)
        accountant.record("sbs-1", 0.5)
        assert accountant.total_epsilon_basic("sbs-0") == pytest.approx(0.1)
        assert accountant.total_epsilon_basic("sbs-1") == pytest.approx(0.5)

    def test_advanced_formula(self):
        epsilon, k, delta = 0.1, 50, 1e-5
        expected = epsilon * math.sqrt(2 * k * math.log(1 / delta)) + k * epsilon * (
            math.exp(epsilon) - 1
        )
        assert advanced_composition_epsilon(epsilon, k, delta) == pytest.approx(expected)

    def test_advanced_beats_basic_for_many_small_releases(self):
        epsilon, k = 0.01, 10_000
        assert advanced_composition_epsilon(epsilon, k, 1e-6) < epsilon * k

    def test_advanced_zero_releases(self):
        assert advanced_composition_epsilon(0.1, 0, 1e-5) == 0.0

    def test_advanced_invalid_delta(self):
        with pytest.raises(PrivacyError):
            advanced_composition_epsilon(0.1, 5, 1.5)

    def test_accountant_advanced_requires_homogeneous(self):
        accountant = PrivacyAccountant()
        accountant.record("sbs-0", 0.1)
        accountant.record("sbs-0", 0.2)
        with pytest.raises(PrivacyError, match="homogeneous"):
            accountant.total_epsilon_advanced(1e-5)

    def test_accountant_advanced_happy_path(self):
        accountant = PrivacyAccountant()
        for _ in range(5):
            accountant.record("sbs-0", 0.1)
        value = accountant.total_epsilon_advanced(1e-5)
        assert value == pytest.approx(advanced_composition_epsilon(0.1, 5, 1e-5))

    def test_accountant_advanced_empty(self):
        assert PrivacyAccountant().total_epsilon_advanced(1e-5) == 0.0


class TestBudgetEnforcement:
    def test_budget_enforced(self):
        accountant = PrivacyAccountant(budget=0.25)
        accountant.record("sbs-0", 0.2)
        with pytest.raises(PrivacyError, match="exceed"):
            accountant.record("sbs-0", 0.1)

    def test_remaining_budget(self):
        accountant = PrivacyAccountant(budget=1.0)
        accountant.record("sbs-0", 0.4)
        assert accountant.remaining_budget() == pytest.approx(0.6)

    def test_unlimited_budget(self):
        assert PrivacyAccountant().remaining_budget() is None

    def test_invalid_budget(self):
        with pytest.raises(PrivacyError):
            PrivacyAccountant(budget=0.0)


class TestHelpers:
    def test_per_release_split(self):
        assert per_release_epsilon(1.0, 10) == pytest.approx(0.1)

    def test_per_release_invalid(self):
        with pytest.raises(PrivacyError):
            per_release_epsilon(0.0, 10)
        with pytest.raises(PrivacyError):
            per_release_epsilon(1.0, 0)

    def test_release_validation(self):
        with pytest.raises(PrivacyError):
            Release(party="sbs-0", epsilon=-0.1)
