"""Rule registry for :mod:`repro.analysis`.

Importing this package imports every rule module, which registers the
rules as a side effect of their ``@register`` decorators.  The public
surface re-exports the registry accessors from :mod:`.base`.
"""

from .base import FileContext, Rule, all_rules, dotted_name, register, resolve_rule
from . import api, determinism, hotpath, numerics, privacy, threading, trusted  # noqa: F401  (registration imports)

__all__ = [
    "FileContext",
    "Rule",
    "all_rules",
    "dotted_name",
    "register",
    "resolve_rule",
]
