"""Perf-tracking benchmark harness: emits ``BENCH_*.json``.

Measures the two optimization layers this repository ships for
Algorithm 1 and writes machine-readable records for CI trend tracking:

* ``BENCH_algorithm1.json`` — single-thread hot-path numbers: the legacy
  (per-iteration validated) subproblem oracle vs the hoisted
  (buffer-reusing) oracle vs the batched (vectorized-kernel) oracle, a
  full ``solve_distributed`` run with its perf counters, a sequential
  vs thread-pool Jacobi sweep, and exact three-way solution
  cross-checks.
* ``BENCH_sweeps.json`` — sweep-engine numbers on a figure-style
  epsilon sweep: the legacy serial engine (no dedup, validating solver),
  the optimized serial engine, and the process-parallel engine, with an
  exact serial-vs-parallel cross-check.
* ``BENCH_metrics_overhead.json`` — telemetry-layer numbers: the cost of
  the disabled ``obs.emit`` no-op, the macro overhead of a fully metered
  run (trace + metrics) vs a bare run, and a live-vs-offline snapshot
  byte-identity cross-check.
* ``BENCH_runtime.json`` — socket-transport numbers on the 3-SBS smoke
  instance: ``solve_over_sockets`` wall time vs the in-process
  simulator, a trace bit-identity cross-check, and the retransmission /
  stale-phase / proxy ledger of one fixed-seed chaos run.
* ``BENCH_spans.json`` — causal-span-layer numbers: the cost of the
  disabled ``obs.span`` no-op, a spans-on vs spans-off event-stream
  identity check, byte-identity of two span-enabled socket runs, a span
  tree well-formedness check, and the critical-path coverage of a timed
  run's root span.
* ``BENCH_scaling.json`` — the sparse core on a multi-axis grid growing
  ``N``, ``U`` and ``F`` together (city-scale instances from
  ``generate_city_instance`` solved by ``solve_distributed_sparse``),
  with sparse-vs-dense cross-checks on every point small enough to
  densify.  ``--full`` extends the grid to hundreds of SBSs, thousands
  of MU groups and ``10^6`` contents.

Usage::

    PYTHONPATH=src python benchmarks/bench_to_json.py [--smoke] [--full]
        [--workers N] [--out-dir DIR]

``--smoke`` shrinks the scenario so the harness finishes in seconds (the
CI perf-smoke job runs this on every push).  Records land at the repo
root by default so the committed copies double as regression baselines
for ``repro-report regress``.  The exit code is nonzero whenever any
cross-check diverges, so CI fails loudly if the fast paths ever stop
being exact.

Note on speedup interpretation: the parallel numbers depend on the
machine's core count — on a single-core runner ``parallel_seconds`` can
exceed serial due to process startup, which is why the divergence check,
not the speedup, is the hard gate.  ``speedup_vs_legacy`` (dedup + fast
solver, still one process) is the portable headline number.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro import obs, perf  # noqa: E402
from repro.core.distributed import DistributedConfig, solve_distributed  # noqa: E402
from repro.core.subproblem import (  # noqa: E402
    SubproblemConfig,
    SubproblemWorkspace,
    solve_subproblem,
)
from repro.experiments.config import ScenarioConfig, build_problem  # noqa: E402
from repro.experiments.runner import run_sweep  # noqa: E402


def _machine_record() -> dict:
    """Host facts needed to compare benchmark records across runs."""
    import os

    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _time_repeated(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _solutions_identical(a, b) -> bool:
    """Exact agreement of two subproblem solutions, trajectory included."""
    return bool(
        np.array_equal(a.caching, b.caching)
        and np.array_equal(a.routing, b.routing)
        and a.cost == b.cost
        and a.dual_history == b.dual_history
    )


def bench_algorithm1(smoke: bool) -> tuple:
    """Hot-path benchmark: legacy vs hoisted vs batched subproblem oracles.

    Times all three oracles on the same instance, cross-checks them
    exactly against each other, runs one full ``solve_distributed``
    under perf counters, and compares a sequential Jacobi sweep with the
    thread-pool executor.  Returns ``(record, ok)`` where ``ok`` is
    False when any oracle (or the Jacobi executor) disagrees with the
    legacy reference on any component of the solution.
    """
    scenario = ScenarioConfig() if not smoke else ScenarioConfig(num_groups=12, num_links=16)
    problem = build_problem(scenario, rng=7)
    rng = np.random.default_rng(0)
    aggregate = np.clip(
        rng.random((problem.num_groups, problem.num_files)) * 0.6, 0.0, 1.0
    )
    repeats = 5 if smoke else 8

    batched_cfg = SubproblemConfig(oracle="batched")
    hoisted_cfg = SubproblemConfig(oracle="hoisted")
    legacy_cfg = SubproblemConfig(oracle="legacy")
    workspace = SubproblemWorkspace(problem)

    batched = solve_subproblem(problem, 0, aggregate, batched_cfg, workspace=workspace)
    hoisted = solve_subproblem(problem, 0, aggregate, hoisted_cfg, workspace=workspace)
    legacy = solve_subproblem(problem, 0, aggregate, legacy_cfg)
    identical = _solutions_identical(hoisted, legacy)
    identical_batched = _solutions_identical(batched, legacy)

    def timed_oracle(cfg, reps):
        return _time_repeated(
            lambda: solve_subproblem(problem, 0, aggregate, cfg, workspace=workspace),
            reps,
        )

    t_batched = timed_oracle(batched_cfg, repeats)
    t_hoisted = timed_oracle(hoisted_cfg, repeats)
    t_legacy = _time_repeated(
        lambda: solve_subproblem(problem, 0, aggregate, legacy_cfg), max(2, repeats // 2)
    )

    registry = perf.PerfRegistry()
    config = DistributedConfig(accuracy=1e-3, max_iterations=4 if smoke else 8)
    t0 = time.perf_counter()
    with perf.collecting(registry):
        result = solve_distributed(problem, config, rng=0)
    run_wall = time.perf_counter() - t0

    # Jacobi executor: sequential vs thread pool, exact cross-check.
    jacobi_seq_cfg = DistributedConfig(
        accuracy=1e-3, max_iterations=3, mode="jacobi", damping=0.7
    )
    jacobi_par_cfg = DistributedConfig(
        accuracy=1e-3, max_iterations=3, mode="jacobi", damping=0.7, jacobi_workers=4
    )
    jacobi_seq = solve_distributed(problem, jacobi_seq_cfg, rng=0)
    jacobi_par = solve_distributed(problem, jacobi_par_cfg, rng=0)
    jacobi_identical = bool(
        jacobi_seq.cost == jacobi_par.cost
        and np.array_equal(jacobi_seq.solution.caching, jacobi_par.solution.caching)
        and np.array_equal(jacobi_seq.solution.routing, jacobi_par.solution.routing)
    )
    t_jacobi_seq = _time_repeated(
        lambda: solve_distributed(problem, jacobi_seq_cfg, rng=0), 2
    )
    t_jacobi_par = _time_repeated(
        lambda: solve_distributed(problem, jacobi_par_cfg, rng=0), 2
    )

    record = {
        "benchmark": "algorithm1_hot_path",
        "smoke": smoke,
        "machine": _machine_record(),
        "scenario": {
            "num_sbs": problem.num_sbs,
            "num_groups": problem.num_groups,
            "num_files": problem.num_files,
        },
        "solve_subproblem": {
            "legacy_seconds": t_legacy,
            "fast_seconds": t_hoisted,
            "batched_seconds": t_batched,
            "speedup": t_legacy / t_hoisted if t_hoisted > 0 else float("inf"),
            "batched_speedup": t_hoisted / t_batched if t_batched > 0 else float("inf"),
            "cumulative_speedup": t_legacy / t_batched if t_batched > 0 else float("inf"),
            "identical": identical,
            "identical_batched": identical_batched,
        },
        "jacobi_executor": {
            "sequential_seconds": t_jacobi_seq,
            "threadpool_seconds": t_jacobi_par,
            "workers": 4,
            "identical": jacobi_identical,
        },
        "solve_distributed": {
            "wall_seconds": run_wall,
            "cost": result.cost,
            "iterations": result.iterations,
            "converged": result.converged,
            "perf": registry.snapshot(),
        },
    }
    return record, identical and identical_batched and jacobi_identical


def bench_sweeps(smoke: bool, workers: int) -> tuple:
    """Sweep-engine benchmark: legacy serial vs optimized serial vs parallel.

    Returns ``(record, ok)`` where ``ok`` is False when the parallel (or
    dedup) sweep differs from the plain serial sweep in any cell.
    """
    scenario = (
        ScenarioConfig() if not smoke else ScenarioConfig(num_groups=12, num_links=16)
    )
    config = DistributedConfig(
        accuracy=1e-3, max_iterations=3 if smoke else 6,
        subproblem=SubproblemConfig(fast=True),
    )
    legacy_config = DistributedConfig(
        accuracy=1e-3, max_iterations=3 if smoke else 6,
        subproblem=SubproblemConfig(fast=False),
    )
    epsilons = [0.01, 1.0, 100.0] if smoke else [0.01, 0.1, 1.0, 10.0, 100.0]
    seeds = (7, 11) if smoke else (7, 11, 13)

    def sweep(distributed_config, **kw):
        return run_sweep(
            "bench",
            "epsilon",
            epsilons,
            lambda _x: scenario,
            epsilon_of_x=lambda x: float(x),
            seeds=seeds,
            distributed_config=distributed_config,
            **kw,
        )

    # The pre-optimization engine: validating solver, no dedup, serial.
    t0 = time.perf_counter()
    legacy_result = sweep(legacy_config, workers=1, dedup=False)
    t_legacy = time.perf_counter() - t0

    # Serial vs parallel feeds a tight ratio gate, so take best-of-3
    # with the reps interleaved: single-shot sweep walls swing ~10% on
    # busy runners, and process-lifetime drift would otherwise bias
    # whichever side is measured second.
    serial_result = sweep(config, workers=1)
    parallel_result = sweep(config, workers=workers)
    t_serial = float("inf")
    t_parallel = float("inf")
    for _ in range(4):
        t_serial = min(t_serial, _time_repeated(lambda: sweep(config, workers=1), 1))
        t_parallel = min(
            t_parallel, _time_repeated(lambda: sweep(config, workers=workers), 1)
        )

    identical = serial_result == parallel_result
    # The solver fast path is exact, so the legacy engine must agree too.
    identical_vs_legacy = legacy_result == serial_result

    cells = len(epsilons) * len(seeds) * 3
    record = {
        "benchmark": "sweep_engine",
        "smoke": smoke,
        "workers": workers,
        "machine": _machine_record(),
        "sweep": {"x_values": epsilons, "seeds": list(seeds), "cells": cells},
        "legacy_serial_seconds": t_legacy,
        "serial_seconds": t_serial,
        "parallel_seconds": t_parallel,
        "speedup_vs_legacy": t_legacy / t_serial if t_serial > 0 else float("inf"),
        "speedup_vs_serial": t_serial / t_parallel if t_parallel > 0 else float("inf"),
        "identical_serial_parallel": identical,
        "identical_vs_legacy_engine": identical_vs_legacy,
    }
    return record, identical and identical_vs_legacy


def bench_metrics_overhead(smoke: bool) -> tuple:
    """Telemetry benchmark: disabled-emit cost and metered-run overhead.

    Returns ``(record, ok)`` where ``ok`` is False when the live metrics
    snapshot is not byte-identical to the one derived offline from the
    trace the same run wrote.
    """
    import tempfile

    scenario = (
        ScenarioConfig() if not smoke else ScenarioConfig(num_groups=12, num_links=16)
    )
    problem = build_problem(scenario, rng=7)
    config = DistributedConfig(accuracy=1e-3, max_iterations=4 if smoke else 8)

    # Micro: the disabled fast path — one emit with no recorder active.
    calls = 200_000 if smoke else 1_000_000
    t0 = time.perf_counter()
    for _ in range(calls):
        obs.emit("iteration", iteration=0, cost=0.0)
    noop_per_call = (time.perf_counter() - t0) / calls

    # Macro: bare run vs fully metered run (trace on disk + metrics).
    repeats = 2 if smoke else 3
    t_bare = _time_repeated(lambda: solve_distributed(problem, config, rng=0), repeats)

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "bench.jsonl"

        def metered() -> None:
            with obs.metering(trace=str(trace_path)):
                solve_distributed(problem, config, rng=0)

        t_metered = _time_repeated(metered, repeats)
        with obs.metering(trace=str(trace_path)) as registry:
            solve_distributed(problem, config, rng=0)
        live_json = registry.to_json()
        offline_json = obs.derive_metrics(str(trace_path)).to_json()
        events = sum(1 for _ in trace_path.open()) - 1  # minus trace_start

    identical = live_json == offline_json
    record = {
        "benchmark": "metrics_overhead",
        "smoke": smoke,
        "machine": _machine_record(),
        "noop_emit": {"calls": calls, "seconds_per_call": noop_per_call},
        "metered_run": {
            "bare_seconds": t_bare,
            "metered_seconds": t_metered,
            "overhead_ratio": t_metered / t_bare if t_bare > 0 else float("inf"),
            "events": events,
        },
        "live_offline_identical": identical,
    }
    return record, identical


def bench_runtime(smoke: bool) -> tuple:
    """Socket-runtime benchmark: transport overhead plus a chaos ledger.

    Returns ``(record, ok)`` where ``ok`` is False when the fault-free
    socket run is not bit-identical to the in-process simulation or the
    fixed-seed chaos run fails to converge.  Wall times and fault counts
    are informational (timing- and machine-dependent); the booleans are
    the regression gate.
    """
    import filecmp
    import tempfile

    from repro.network.faults import FaultConfig
    from repro.runtime import RuntimeConfig, solve_over_sockets
    from repro.runtime.smoke import chaos_plan, smoke_problem

    problem = smoke_problem()
    config = DistributedConfig(max_iterations=8)
    repeats = 2 if smoke else 3

    t_inprocess = _time_repeated(
        lambda: solve_distributed(problem, config, faults=FaultConfig()), repeats
    )
    t_socket = _time_repeated(
        lambda: solve_over_sockets(problem, config, runtime=RuntimeConfig()), repeats
    )

    with tempfile.TemporaryDirectory() as tmp:
        socket_trace = Path(tmp) / "socket.jsonl"
        sim_trace = Path(tmp) / "inprocess.jsonl"
        with obs.recording(str(socket_trace), timings=False):
            socket_result, _ = solve_over_sockets(
                problem, config, runtime=RuntimeConfig()
            )
        with obs.recording(str(sim_trace), timings=False):
            sim_result = solve_distributed(problem, config, faults=FaultConfig())
        identical = filecmp.cmp(socket_trace, sim_trace, shallow=False) and (
            np.array_equal(
                socket_result.solution.caching, sim_result.solution.caching
            )
            and np.array_equal(
                socket_result.solution.routing, sim_result.solution.routing
            )
        )

    chaos_seed = 3
    runtime = RuntimeConfig(
        faults=chaos_plan(chaos_seed), ack_timeout=0.1, phase_deadline=10.0
    )
    t0 = time.perf_counter()
    chaos_result, chaos_report = solve_over_sockets(problem, config, runtime=runtime)
    chaos_wall = time.perf_counter() - t0

    record = {
        "benchmark": "socket_runtime",
        "smoke": smoke,
        "machine": _machine_record(),
        "scenario": {
            "num_sbs": problem.num_sbs,
            "num_groups": problem.num_groups,
            "num_files": problem.num_files,
        },
        "faultfree": {
            "inprocess_seconds": t_inprocess,
            "socket_seconds": t_socket,
            "overhead_ratio": (
                t_socket / t_inprocess if t_inprocess > 0 else float("inf")
            ),
            "identical": identical,
        },
        "chaos": {
            "seed": chaos_seed,
            "wall_seconds": chaos_wall,
            "converged": chaos_result.converged,
            "iterations": chaos_result.iterations,
            "retransmissions": chaos_report.retransmissions,
            "stale_phases": chaos_report.stale_phases,
            "deadline_expired": chaos_report.deadline_expired,
            "corrupted": chaos_report.corrupted,
            "proxy": chaos_report.proxy,
        },
    }
    return record, identical and chaos_result.converged


def bench_spans(smoke: bool) -> tuple:
    """Span-layer benchmark: disabled no-op cost plus four hard gates.

    Returns ``(record, ok)`` where ``ok`` is False when any boolean
    gate fails: a spans-on run's non-span event stream must match a
    spans-off run exactly (enabling spans never perturbs existing
    traces), two fault-free span-enabled socket runs must write
    byte-identical traces, the merged span tree must be well-formed
    (single root, no orphans, no cycles), and on a timed run the
    critical path must cover the root span's wall-clock within 5%.
    The no-op cost and coverage error are informational.
    """
    import filecmp
    import tempfile

    from repro.obs.recorder import ListRecorder
    from repro.obs.span_analysis import check_spans, critical_path
    from repro.runtime import RuntimeConfig, solve_over_sockets
    from repro.runtime.smoke import smoke_problem

    problem = smoke_problem()
    config = DistributedConfig(max_iterations=8)

    # Micro: the disabled fast path — with no recorder active (or
    # spans=False) every obs.span() returns the shared no-op tracker.
    calls = 200_000 if smoke else 1_000_000
    t0 = time.perf_counter()
    for _ in range(calls):
        with obs.span("bench", category="other"):
            pass
    noop_per_call = (time.perf_counter() - t0) / calls

    # Gate 1: enabling spans must not perturb the existing stream — a
    # spans-on run's events minus span/proxy must equal a spans-off
    # run's events exactly (ListRecorder carries no seq numbers, so
    # in-memory streams compare directly).
    plain = ListRecorder()
    spanned = ListRecorder()
    with obs.recording(plain, timings=False):
        baseline = solve_distributed(problem, config, rng=0)
    with obs.recording(spanned, timings=False, spans=True):
        result = solve_distributed(problem, config, rng=0)
    non_span = [
        event
        for event in spanned.events
        if event.get("type") not in ("span", "proxy")
    ]
    stream_identical = bool(non_span == plain.events and baseline.cost == result.cost)
    span_events = [event for event in spanned.events if event.get("type") == "span"]

    # Gates 2+3: two fault-free span-enabled socket runs must write
    # byte-identical traces with a well-formed merged span tree.
    with tempfile.TemporaryDirectory() as tmp:
        first = Path(tmp) / "spans-a.jsonl"
        second = Path(tmp) / "spans-b.jsonl"
        for path in (first, second):
            with obs.recording(str(path), timings=False, spans=True):
                solve_over_sockets(problem, config, runtime=RuntimeConfig())
        deterministic = bool(filecmp.cmp(first, second, shallow=False))
    well_formed = not check_spans(spanned.events)

    # Gate 4: on a timed socket run the critical path's blocking chain
    # must sum to the root span's wall-clock within 5%.
    timed = ListRecorder()
    with obs.recording(timed, timings=True, spans=True):
        solve_over_sockets(problem, config, runtime=RuntimeConfig())
    path_report = critical_path(timed.events)
    roots = [
        event
        for event in timed.events
        if event.get("type") == "span" and event.get("parent") is None
    ]
    coverage_error = float("inf")
    if path_report["basis"] == "wall" and roots and "seconds" in roots[0]:
        root_seconds = float(roots[0]["seconds"])
        coverage_error = abs(path_report["total"] - root_seconds) / max(
            root_seconds, 1e-12
        )
    coverage_ok = coverage_error <= 0.05

    record = {
        "benchmark": "span_layer",
        "smoke": smoke,
        "machine": _machine_record(),
        "noop_span": {"calls": calls, "seconds_per_call": noop_per_call},
        "faultfree": {
            "span_events": len(span_events),
            "disabled_stream_identical": stream_identical,
            "spans_deterministic": deterministic,
            "well_formed": well_formed,
        },
        "critical_path": {
            "basis": path_report["basis"],
            "total_seconds": path_report["total"],
            "coverage_error": coverage_error,
            "coverage_ok": coverage_ok,
        },
    }
    ok = stream_identical and deterministic and well_formed and coverage_ok
    return record, bool(ok)


def bench_scaling(smoke: bool, full: bool = False) -> tuple:
    """Multi-axis scaling: the sparse core on grids growing N, U *and* F.

    Earlier revisions grew only the group count of a fixed 3-SBS/50-file
    dense scenario, so every point measured the same memory regime.
    This grid builds seeded city-scale instances with
    :func:`repro.workload.generate_city_instance` and solves them with
    :func:`repro.core.solve_distributed_sparse`; each point records the
    build and solve wall times (informational), the compact memory
    footprint, and the deterministic final cost (pinned to 1e-6 relative
    by the CI regress gate).  Points whose ``N*U*F`` fits the densify
    cell budget additionally solve the materialized dense instance with
    ``solve_distributed`` and cross-check cache sets exactly and costs
    to 1e-9 relative — the ``sparse_matches_dense`` boolean is the hard
    gate.  ``--smoke`` runs a tiny grid (CI); the default grid reaches
    ``10^5`` contents; ``--full`` adds the city-scale points
    (hundreds of SBSs, thousands of groups, up to ``10^6`` contents).
    Returns ``(record, ok)``; ``ok`` is False when any densifiable
    point's sparse solve disagrees with the dense reference.
    """
    from repro.core.sparse import DEFAULT_DENSE_CELL_BUDGET, solve_distributed_sparse
    from repro.workload import generate_city_instance

    if smoke:
        grid = [(4, 24, 2_000), (8, 48, 8_000), (16, 96, 32_000)]
    else:
        grid = [(8, 48, 8_000), (16, 96, 32_000), (32, 200, 100_000)]
        if full:
            grid += [(100, 1000, 100_000), (200, 2000, 1_000_000)]
    config = DistributedConfig(
        accuracy=1e-3,
        max_iterations=2,
        subproblem=SubproblemConfig(polish=False, max_iter=40),
    )
    points = {}
    ok = True
    for num_sbs, num_groups, num_files in grid:
        t0 = time.perf_counter()
        instance = generate_city_instance(
            num_sbs,
            num_groups,
            num_files,
            reach=3,
            files_per_group=min(64, max(8, num_files // 50)),
            rng=42,
        )
        build_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        result = solve_distributed_sparse(instance, config)
        sparse_wall = time.perf_counter() - t0
        cells = num_sbs * num_groups * num_files
        point = {
            "num_sbs": num_sbs,
            "num_groups": num_groups,
            "num_files": num_files,
            "nuf": cells,
            "demand_nnz": instance.demand_nnz,
            "instance_nbytes": sum(instance.nbytes().values()),
            "build_seconds": build_seconds,
            "sparse_wall_seconds": sparse_wall,
            "iterations": result.iterations,
            "distributed_cost": result.cost,
        }
        if cells <= DEFAULT_DENSE_CELL_BUDGET:
            dense_problem = instance.to_dense()
            t0 = time.perf_counter()
            dense = solve_distributed(dense_problem, config, rng=0)
            point["dense_wall_seconds"] = time.perf_counter() - t0
            scale = max(abs(dense.cost), 1.0)
            matches = bool(
                abs(result.cost - dense.cost) / scale <= 1e-9
                and np.array_equal(
                    result.solution.to_dense(instance).caching,
                    dense.solution.caching,
                )
            )
            point["sparse_matches_dense"] = matches
            ok &= matches
        points[f"n{num_sbs:03d}_u{num_groups:04d}_f{num_files:07d}"] = point
        # SparseProblemInstance caches per-SBS indexes; drop the
        # reference before the next (larger) point to bound peak RSS.
        del instance, result
    record = {
        "benchmark": "scaling",
        "smoke": smoke,
        "full": full,
        "machine": _machine_record(),
        "points": points,
    }
    return record, bool(ok)


def main(argv=None) -> int:
    """Run the benchmarks; write JSON records; nonzero exit on divergence."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny scenario for CI (seconds, not minutes)"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="extend the scaling grid to city-scale points "
        "(hundreds of SBSs, 10^5-10^6 contents); ignored with --smoke",
    )
    parser.add_argument(
        "--workers", type=int, default=4, metavar="N", help="parallel sweep processes"
    )
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=REPO_ROOT,
        help="directory receiving BENCH_*.json (default: the repo root, "
        "where the committed baselines live)",
    )
    parser.add_argument(
        "--only",
        action="append",
        choices=("algorithm1", "sweeps", "metrics", "runtime", "spans", "scaling"),
        metavar="NAME",
        help="run only the named section(s); repeatable (default: all)",
    )
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    args.out_dir.mkdir(parents=True, exist_ok=True)

    def wanted(name: str) -> bool:
        return args.only is None or name in args.only

    ok = True
    if wanted("algorithm1"):
        ok &= _run_algorithm1(args)
    if wanted("sweeps"):
        ok &= _run_sweeps(args)
    if wanted("metrics"):
        ok &= _run_metrics(args)
    if wanted("runtime"):
        ok &= _run_runtime_bench(args)
    if wanted("spans"):
        ok &= _run_spans(args)
    if wanted("scaling"):
        ok &= _run_scaling(args)

    if not ok:
        print("FAIL: fast/parallel results diverged from the reference", file=sys.stderr)
        return 1
    return 0


def _run_algorithm1(args) -> bool:
    algo_record, algo_ok = bench_algorithm1(args.smoke)
    path = args.out_dir / "BENCH_algorithm1.json"
    path.write_text(json.dumps(algo_record, indent=2) + "\n")
    sub = algo_record["solve_subproblem"]
    jacobi = algo_record["jacobi_executor"]
    print(
        f"algorithm1: legacy {sub['legacy_seconds'] * 1e3:.1f} ms, "
        f"hoisted {sub['fast_seconds'] * 1e3:.1f} ms "
        f"({sub['speedup']:.2f}x), "
        f"batched {sub['batched_seconds'] * 1e3:.1f} ms "
        f"({sub['batched_speedup']:.2f}x vs hoisted, "
        f"{sub['cumulative_speedup']:.2f}x vs legacy, "
        f"identical={sub['identical_batched']}); "
        f"jacobi pool {jacobi['threadpool_seconds']:.2f} s vs "
        f"seq {jacobi['sequential_seconds']:.2f} s "
        f"(identical={jacobi['identical']}) -> {path}"
    )
    return bool(algo_ok)


def _run_scaling(args) -> bool:
    scaling_record, scaling_ok = bench_scaling(args.smoke, args.full)
    path = args.out_dir / "BENCH_scaling.json"
    path.write_text(json.dumps(scaling_record, indent=2) + "\n")
    points = scaling_record["points"]
    rendered = ", ".join(
        f"{name}: {point['sparse_wall_seconds']:.2f} s"
        for name, point in points.items()
    )
    print(f"scaling: {rendered} (sparse==dense on small points: {scaling_ok}) -> {path}")
    return bool(scaling_ok)


def _run_sweeps(args) -> bool:
    sweep_record, sweep_ok = bench_sweeps(args.smoke, args.workers)
    path = args.out_dir / "BENCH_sweeps.json"
    path.write_text(json.dumps(sweep_record, indent=2) + "\n")
    print(
        f"sweeps: legacy {sweep_record['legacy_serial_seconds']:.2f} s, "
        f"serial {sweep_record['serial_seconds']:.2f} s "
        f"({sweep_record['speedup_vs_legacy']:.2f}x vs legacy), "
        f"parallel[{args.workers}] {sweep_record['parallel_seconds']:.2f} s "
        f"(identical={sweep_record['identical_serial_parallel']}) -> {path}"
    )
    return bool(sweep_ok)


def _run_metrics(args) -> bool:
    metrics_record, metrics_ok = bench_metrics_overhead(args.smoke)
    path = args.out_dir / "BENCH_metrics_overhead.json"
    path.write_text(json.dumps(metrics_record, indent=2) + "\n")
    noop = metrics_record["noop_emit"]["seconds_per_call"]
    metered = metrics_record["metered_run"]
    print(
        f"metrics: no-op emit {noop * 1e9:.0f} ns, metered run "
        f"{metered['overhead_ratio']:.2f}x bare "
        f"(live==offline: {metrics_record['live_offline_identical']}) -> {path}"
    )
    return bool(metrics_ok)


def _run_runtime_bench(args) -> bool:
    runtime_record, runtime_ok = bench_runtime(args.smoke)
    path = args.out_dir / "BENCH_runtime.json"
    path.write_text(json.dumps(runtime_record, indent=2) + "\n")
    faultfree = runtime_record["faultfree"]
    chaos = runtime_record["chaos"]
    print(
        f"runtime: in-process {faultfree['inprocess_seconds']:.2f} s, "
        f"socket {faultfree['socket_seconds']:.2f} s "
        f"({faultfree['overhead_ratio']:.2f}x, "
        f"identical={faultfree['identical']}); chaos[seed={chaos['seed']}] "
        f"retransmissions={chaos['retransmissions']} "
        f"stale={chaos['stale_phases']} "
        f"(converged={chaos['converged']}) -> {path}"
    )
    return bool(runtime_ok)


def _run_spans(args) -> bool:
    spans_record, spans_ok = bench_spans(args.smoke)
    path = args.out_dir / "BENCH_spans.json"
    path.write_text(json.dumps(spans_record, indent=2) + "\n")
    noop = spans_record["noop_span"]["seconds_per_call"]
    faultfree = spans_record["faultfree"]
    critical = spans_record["critical_path"]
    print(
        f"spans: no-op span {noop * 1e9:.0f} ns, "
        f"{faultfree['span_events']} span events "
        f"(stream identical={faultfree['disabled_stream_identical']}, "
        f"deterministic={faultfree['spans_deterministic']}, "
        f"well-formed={faultfree['well_formed']}); critical path covers "
        f"root within {100.0 * critical['coverage_error']:.2f}% "
        f"(ok={critical['coverage_ok']}) -> {path}"
    )
    return bool(spans_ok)


if __name__ == "__main__":
    sys.exit(main())
