"""Demand dynamics: evolving the workload over time slots.

The trace behind Fig. 2 is a 30-minute snapshot of *trending* videos —
a population whose ranking churns hour by hour.  This module generates
a sequence of demand matrices for the online extension
(:mod:`repro.core.online`):

* multiplicative log-normal drift on each file's volume (gradual rank
  churn),
* occasional *viral events* boosting a random tail file into the head
  (new trending content),
* geometric decay pulling previously-viral files back down,
* optional slow re-mixing of the request-to-group assignment (users
  move around between slots),

with the total demand volume held constant so cost series across slots
remain comparable.
"""

from __future__ import annotations

import dataclasses
from typing import List, Union

import numpy as np

from .._validation import as_float_array, check_in_interval, check_positive_int, rng_from
from ..exceptions import ValidationError

__all__ = ["DynamicsConfig", "evolve_demand", "demand_sequence"]


@dataclasses.dataclass(frozen=True)
class DynamicsConfig:
    """Parameters of the demand evolution process."""

    drift: float = 0.15          # sigma of the per-slot log-normal shock
    viral_probability: float = 0.1
    viral_boost: float = 10.0    # multiplicative jump of a viral file
    decay: float = 0.9           # pull towards the original popularity
    group_remix: float = 0.05    # fraction of volume re-assigned across groups

    def __post_init__(self) -> None:
        if self.drift < 0:
            raise ValidationError(f"drift must be nonnegative, got {self.drift}")
        check_in_interval(self.viral_probability, "viral_probability", low=0.0, high=1.0)
        if self.viral_boost < 1.0:
            raise ValidationError(f"viral_boost must be >= 1, got {self.viral_boost}")
        check_in_interval(self.decay, "decay", low=0.0, high=1.0)
        check_in_interval(self.group_remix, "group_remix", low=0.0, high=1.0)


def evolve_demand(
    demand: np.ndarray,
    anchor: np.ndarray,
    config: DynamicsConfig,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """One evolution step; returns a new ``(U, F)`` demand matrix.

    ``anchor`` is the long-run popularity profile the process reverts
    to (typically the initial demand); the total volume of ``demand``
    is preserved exactly.
    """
    demand = as_float_array(demand, "demand", ndim=2, nonnegative=True)
    anchor = as_float_array(anchor, "anchor", shape=demand.shape, nonnegative=True)
    generator = rng_from(rng)
    total = demand.sum()
    if total <= 0:
        return demand.copy()

    # Mean-revert towards the anchor, then shock per file.
    evolved = config.decay * demand + (1.0 - config.decay) * anchor
    # repro-lint: disable=noise-outside-privacy -- synthetic workload drift, not a DP release
    shocks = generator.lognormal(mean=0.0, sigma=config.drift, size=demand.shape[1])
    evolved = evolved * shocks[np.newaxis, :]

    # Viral event: a random file's demand jumps everywhere.
    if generator.uniform() < config.viral_probability:
        viral_file = int(generator.integers(demand.shape[1]))
        evolved[:, viral_file] *= config.viral_boost

    # Slow re-mixing of volume across groups (per file).
    if config.group_remix > 0 and demand.shape[0] > 1:
        num_groups = demand.shape[0]
        for f in range(demand.shape[1]):
            column = evolved[:, f]
            moved = config.group_remix * column.sum()
            if moved <= 0:
                continue
            shares = generator.dirichlet(np.ones(num_groups))
            evolved[:, f] = (1.0 - config.group_remix) * column + moved * shares

    # Renormalise to the original volume.
    new_total = evolved.sum()
    if new_total > 0:
        evolved *= total / new_total
    return evolved


def demand_sequence(
    initial: np.ndarray,
    num_slots: int,
    config: DynamicsConfig = DynamicsConfig(),
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> List[np.ndarray]:
    """A list of ``num_slots`` demand matrices starting at ``initial``."""
    check_positive_int(num_slots, "num_slots")
    generator = rng_from(rng)
    initial = as_float_array(initial, "initial", ndim=2, nonnegative=True)
    sequence = [initial.copy()]
    for _ in range(num_slots - 1):
        sequence.append(evolve_demand(sequence[-1], initial, config, rng=generator))
    return sequence
