"""Per-SBS subproblem ``P_n`` (Section III, Eqs. 10-23).

Given the aggregate routing policy ``y_{-n}`` of every other SBS, SBS
``n`` jointly chooses its caching vector ``x_n in {0,1}^F`` and routing
block ``y_n in [0,1]^{U x F}`` to minimize its view of the network cost.
The paper solves this by Lagrangian dual decomposition:

1. relax the cache-coupling constraint ``y <= x`` with multipliers
   ``mu[u, f] >= 0`` (Eq. 15-16);
2. the **caching subproblem** (Eq. 18) maximizes
   ``sum_f x[f] * sum_u mu[u, f]`` under the capacity constraint — its LP
   relaxation is integral (Theorem 1), so it reduces to picking the
   ``C_n`` files with the largest positive aggregated multipliers;
3. the **routing subproblem** (Eq. 20) is a linear program with a single
   budget constraint — an exact fractional knapsack;
4. the multipliers follow the projected subgradient update of Eq. 21
   with the diminishing steps of Eq. 22 and subgradient ``y - x``
   (Eq. 23).

Because the dual iterates' primal pairs need not be jointly feasible, we
add standard *primal recovery*: at every dual iteration the candidate
cache set is evaluated exactly (best feasible routing for that set via
the knapsack) and the cheapest feasible pair seen is returned.  An
optional local-search polish swaps files in/out of the best cache set
until no single swap improves the cost, and an exhaustive solver is
provided for validating optimality on tiny instances.

Two oracle implementations back the dual ascent:

* the **fast path** (``SubproblemConfig.fast=True``, the default) hoists
  everything that does not change across dual iterations — routing cost
  coefficients, knapsack weights, residual caps, the tie-break filler
  order — out of the loop, validates arrays once at this API boundary
  only, and reuses the preallocated buffers of a
  :class:`SubproblemWorkspace`;
* the **legacy path** (``fast=False``) routes every dual iteration
  through the public, validating helpers (:func:`cache_subproblem`,
  :func:`routing_subproblem`).  It is kept as the reference baseline for
  the perf benchmarks and is cross-checked bit-for-bit against the fast
  path in the tests.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Optional, Tuple

import numpy as np

from .. import perf
from .._validation import as_float_array, check_positive_int
from ..exceptions import ValidationError
from ..solvers.fractional_knapsack import KnapsackBatchWorkspace, solve_fractional_knapsack
from ..solvers.subgradient import StepSchedule, SubgradientResult, subgradient_ascent
from .problem import ProblemInstance
from .routing import optimal_routing_for_sbs, residual_caps

__all__ = [
    "SubproblemConfig",
    "SubproblemSolution",
    "SubproblemWorkspace",
    "solve_subproblem",
    "solve_subproblem_exhaustive",
    "cache_subproblem",
    "routing_subproblem",
]

# Polish trials are evaluated in chunks of this many candidate cache
# vectors: improving passes usually accept a trial from the first chunk
# (the scalar loop would have stopped there too), so later chunks are
# never materialized, and the chunk size bounds the trial scratch
# buffers preallocated in :class:`SubproblemWorkspace`.
_TRIAL_CHUNK = 32


@dataclasses.dataclass(frozen=True)
class SubproblemConfig:
    """Tunables for the Lagrangian decomposition.

    Attributes
    ----------
    schedule:
        Dual step-size schedule.  ``None`` auto-scales ``eta0`` to half
        the largest absolute routing coefficient so the multipliers can
        reach the coefficients' magnitude in a handful of steps.
    max_iter / tol / patience:
        Stopping controls for the dual ascent (see
        :func:`repro.solvers.subgradient.subgradient_ascent`).
    polish:
        Run single-swap local search on the recovered cache set.
    fast:
        Use a hoisted, buffer-reusing oracle (see the module
        docstring).  ``False`` selects the legacy per-iteration
        validated helpers; both produce bit-identical solutions.
    oracle:
        Which implementation backs the dual ascent: ``"batched"`` (the
        default — batched numpy kernels, one fused knapsack batch and an
        allocation-free subgradient step per iteration), ``"hoisted"``
        (the scalar fast path: hoisted invariants but one scalar
        knapsack call per subproblem), or ``"legacy"`` (per-iteration
        validated helpers).  ``None`` derives the choice from ``fast``
        (``True`` → ``"batched"``, ``False`` → ``"legacy"``).  All three
        produce bit-identical solutions; the tiers exist so the perf
        benchmarks can measure each rung of the ladder.
    """

    schedule: Optional[StepSchedule] = None
    max_iter: int = 120
    tol: float = 1e-7
    patience: int = 25
    polish: bool = True
    fast: bool = True
    oracle: Optional[str] = None

    def __post_init__(self) -> None:
        check_positive_int(self.max_iter, "max_iter")
        check_positive_int(self.patience, "patience")
        if self.tol < 0:
            raise ValidationError(f"tol must be nonnegative, got {self.tol}")
        if self.oracle not in (None, "batched", "hoisted", "legacy"):
            raise ValidationError(
                "oracle must be one of 'batched', 'hoisted', 'legacy' or None, "
                f"got {self.oracle!r}"
            )

    def resolved_oracle(self) -> str:
        """The effective oracle tier after applying the ``fast`` default."""
        if self.oracle is not None:
            return self.oracle
        return "batched" if self.fast else "legacy"


@dataclasses.dataclass(frozen=True)
class SubproblemSolution:
    """Solution of ``P_n`` for one SBS.

    ``cost`` is the *local objective* ``f_n`` of Eq. 10 (it contains the
    constant BS term induced by ``y_{-n}``, so it is comparable across
    candidate policies of the same SBS but not across SBSs).
    """

    caching: np.ndarray  # (F,)
    routing: np.ndarray  # (U, F)
    cost: float
    best_dual: float
    dual_history: Tuple[float, ...]
    iterations: int
    converged: bool
    multipliers: Optional[np.ndarray] = None  # (U, F) final dual iterate


class SubproblemWorkspace:
    """Preallocated scratch buffers for the fast subproblem oracles.

    One workspace holds every ``(U, F)``-sized buffer the dual-ascent
    inner loop needs, so a caller that solves repeatedly — an
    :class:`~repro.core.distributed.SBSAgent` runs one solve per
    Gauss-Seidel round — pays the allocations once per run instead of
    once per dual iteration.  The batched oracle additionally keeps its
    2-row :class:`~repro.solvers.fractional_knapsack.KnapsackBatchWorkspace`
    (row 0: the dual routing subproblem, row 1: primal recovery) and the
    flat multiplier/subgradient iterates here, so a whole dual iteration
    runs without allocating.

    A workspace adapts to the problem shape it is used with:
    :func:`solve_subproblem` calls :meth:`ensure_shape`, which
    re-allocates every buffer when the ``(U, F)`` shape changed since
    the last solve (sweep cells of different sizes can safely share one
    workspace).
    """

    __slots__ = (
        "shape",
        "caps",
        "effective_caps",
        "costs_flat",
        "priced_mu_flat",
        "mu_flat",
        "subgrad_flat",
        "prod_flat",
        "aggregated",
        "batch_costs",
        "batch_caps",
        "knapsack",
        "_trial_prod",
        "_trial_scratch",
    )

    def __init__(self, problem: ProblemInstance) -> None:
        self._allocate((problem.num_groups, problem.num_files))

    def _allocate(self, shape: Tuple[int, int]) -> None:
        size = shape[0] * shape[1]
        self.shape = shape
        self.caps = np.empty(shape)
        self.effective_caps = np.empty(shape)
        self.costs_flat = np.empty(size)
        self.priced_mu_flat = np.empty(size)
        self.mu_flat = np.empty(size)
        self.subgrad_flat = np.empty(size)
        self.prod_flat = np.empty(size)
        self.aggregated = np.empty(shape[1])
        self.batch_costs = np.empty((2, size))
        self.batch_caps = np.empty((2, size))
        self.knapsack = KnapsackBatchWorkspace(2, size)
        # The polish trial buffers are (_TRIAL_CHUNK, U*F)-sized — by far
        # the largest scratch in the workspace — and are only touched when
        # the polish pass actually evaluates swap candidates, so they are
        # allocated lazily; sparse-path solves with polish disabled never
        # pay for them.
        self._trial_prod: Optional[np.ndarray] = None
        self._trial_scratch: Optional[KnapsackBatchWorkspace] = None

    @property
    def trial_prod(self) -> np.ndarray:
        """Lazily allocated ``(_TRIAL_CHUNK, U*F)`` polish product scratch."""
        if self._trial_prod is None:
            self._trial_prod = np.empty((_TRIAL_CHUNK, self.shape[0] * self.shape[1]))
        return self._trial_prod

    @property
    def trial_scratch(self) -> KnapsackBatchWorkspace:
        """Lazily allocated ``_TRIAL_CHUNK``-row polish knapsack workspace."""
        if self._trial_scratch is None:
            self._trial_scratch = KnapsackBatchWorkspace(
                _TRIAL_CHUNK, self.shape[0] * self.shape[1]
            )
        return self._trial_scratch

    def ensure_shape(self, shape: Tuple[int, int]) -> None:
        """Re-allocate every buffer if ``shape`` differs from the last solve."""
        if self.shape != shape:
            self._allocate(shape)


def _routing_coefficients(problem: ProblemInstance, sbs: int) -> np.ndarray:
    """Linear coefficients ``c[u, f]`` of ``y[n, u, f]`` in ``f_n``.

    From Eq. 10: ``c = (d[n,u] - d_hat[u]) * l[n,u] * lambda[u,f]``,
    nonpositive wherever offloading pays.
    """
    return -problem.savings_margin()[sbs][:, np.newaxis] * problem.demand


def _constant_term(problem: ProblemInstance, sbs: int, aggregate_others: np.ndarray) -> float:
    """The ``y_n``-independent part of ``f_n`` (BS cost of what others leave).

    ``sum_u d_hat[u] * sum_f (1 - y_{-n}[u,f] * l[n,u]) * lambda[u,f]``
    evaluated with the aggregate clipped to ``[0, 1]``.
    """
    aggregate = np.clip(aggregate_others, 0.0, 1.0)
    residual = 1.0 - aggregate * problem.connectivity[sbs][:, np.newaxis]
    return float(np.sum(problem.bs_cost[:, np.newaxis] * residual * problem.demand))


def cache_subproblem(
    problem: ProblemInstance,
    sbs: int,
    multipliers: np.ndarray,
    *,
    tie_break_value: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve the caching subproblem (Eq. 18) — integral per Theorem 1.

    Maximizes ``sum_f x[f] * m[f]`` with ``m[f] = sum_u mu[u, f]`` under
    ``sum_f x[f] <= C_n`` and ``x in [0, 1]``: select up to ``C_n`` files
    with the largest positive ``m[f]``.  Slots left over by zero
    multipliers are filled by ``tie_break_value`` (typically potential
    savings) — any completion is dual-optimal, and this choice speeds up
    primal recovery.
    """
    problem._check_sbs(sbs)
    multipliers = as_float_array(
        multipliers, "multipliers", shape=(problem.num_groups, problem.num_files)
    )
    aggregated = multipliers.sum(axis=0)
    capacity = int(np.floor(problem.cache_capacity[sbs] + 1e-9))
    filler_order = None
    if tie_break_value is not None:
        filler_order = np.argsort(-np.asarray(tie_break_value, dtype=np.float64), kind="stable")
    return _select_cache_set(problem.num_files, capacity, aggregated, filler_order)


def _select_cache_set(
    num_files: int,
    capacity: int,
    aggregated: np.ndarray,
    filler_order: Optional[np.ndarray],
) -> np.ndarray:
    """Shared greedy selection: top-``capacity`` positive aggregated
    multipliers, remaining slots filled along ``filler_order``.

    Vectorized but equivalent to the original first-come scan: the
    chosen *set* (and therefore the binary caching vector) is identical.
    """
    caching = np.zeros(num_files)
    if capacity == 0:
        return caching
    order = np.argsort(-aggregated, kind="stable")
    head = order[:capacity]
    take = head[aggregated[head] > 0]
    caching[take] = 1.0
    if take.size < capacity and filler_order is not None:
        taken = np.zeros(num_files, dtype=bool)
        taken[take] = True
        fill = filler_order[~taken[filler_order]][: capacity - take.size]
        caching[fill] = 1.0
    return caching


def routing_subproblem(
    problem: ProblemInstance,
    sbs: int,
    multipliers: np.ndarray,
    caps: np.ndarray,
    *,
    extra_cost: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Solve the routing subproblem (Eq. 20) by fractional knapsack.

    Minimizes ``sum (c[u,f] + mu[u,f]) * y`` under the bandwidth budget
    and ``0 <= y <= caps``.  Note the cache coupling has been dualized,
    so ``y`` ranges over all connected pairs regardless of the cache.
    ``extra_cost`` adds a further per-unit term (the BS congestion
    prices of the enhanced coordination mode).
    """
    costs = _routing_coefficients(problem, sbs) + multipliers
    if extra_cost is not None:
        costs = costs + extra_cost
    result = solve_fractional_knapsack(
        costs.ravel(),
        np.broadcast_to(problem.demand, costs.shape).ravel(),
        float(problem.bandwidth[sbs]),
        np.asarray(caps, dtype=np.float64).ravel(),
    )
    return result.allocation.reshape(problem.num_groups, problem.num_files)


def _evaluate_cache_set(
    problem: ProblemInstance,
    sbs: int,
    caching: np.ndarray,
    caps: np.ndarray,
    constant: float,
    extra_cost: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, float]:
    """Best feasible routing for a cache set and the resulting objective.

    The objective is the (possibly price-augmented) local cost
    ``constant + sum((c + extra) * y)``.
    """
    routing = optimal_routing_for_sbs(problem, sbs, caching, caps, extra_cost=extra_cost)
    coefficients = _routing_coefficients(problem, sbs)
    if extra_cost is not None:
        coefficients = coefficients + extra_cost
    cost = constant + float(np.sum(coefficients * routing))
    return routing, cost


def _polish_cache_set(
    caching: np.ndarray,
    best_routing: np.ndarray,
    best_cost: float,
    *,
    evaluate: Callable[[np.ndarray], Tuple[np.ndarray, float]],
    potential: np.ndarray,
    capacity: int,
    max_passes: int = 4,
    max_candidates: int = 12,
    batch_evaluate: Optional[Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]] = None,
) -> Tuple[np.ndarray, np.ndarray, float]:
    """First-improvement single-swap local search over the cache set.

    Candidate in-files are limited to the ``max_candidates`` highest
    potential-value uncached files — the only ones that can plausibly
    displace a cached file under a linear objective.  ``evaluate`` maps a
    candidate caching vector to its exact ``(routing, cost)``; the
    oracles supply their own evaluator.

    ``batch_evaluate`` (batched oracle only) maps a ``(T, F)`` matrix of
    trial cache vectors to ``(routings (T, U, F), costs (T,))`` in one
    shared-order knapsack batch.  Within one pass every swap trial
    derives from the same incumbent (the scalar loop accepts at most one
    swap and then restarts the pass), so evaluating all trials up front
    and accepting the first improving one visits the exact same accept
    sequence as the scalar double loop — results are bit-identical, only
    the final no-improvement pass stops paying one scalar knapsack per
    trial.
    """
    caching = caching.copy()
    for _ in range(max_passes):
        cached_files = np.flatnonzero(caching > 0)
        empty_slots = capacity - cached_files.size
        uncached_files = np.flatnonzero(caching == 0)
        # Only candidates with any potential value are worth trying.
        candidates = uncached_files[potential[uncached_files] > 0]
        candidates = candidates[np.argsort(-potential[candidates], kind="stable")]
        candidates = candidates[: max(max_candidates, empty_slots)]
        improved = False
        if empty_slots > 0:
            for f_in in candidates[:empty_slots]:
                trial = caching.copy()
                trial[f_in] = 1.0
                routing, cost = evaluate(trial)
                if cost < best_cost - 1e-12:
                    caching, best_routing, best_cost = trial, routing, cost
                    improved = True
        if batch_evaluate is not None:
            # The scalar loop scans only the first cached file once the
            # add phase already improved; mirror that exactly.
            outs = cached_files[:1] if improved else cached_files
            if outs.size and candidates.size:
                num_in = candidates.size
                trials = np.tile(caching, (outs.size * num_in, 1))
                rows = np.arange(outs.size * num_in)
                trials[rows, np.repeat(outs, num_in)] = 0.0
                trials[rows, np.tile(candidates, outs.size)] = 1.0
                # Chunked evaluation with early exit: the first improving
                # trial ends the pass (exactly where the scalar loop
                # stops), so improving passes usually pay for one chunk
                # instead of the full trial matrix.
                for start in range(0, trials.shape[0], _TRIAL_CHUNK):
                    chunk = trials[start : start + _TRIAL_CHUNK]
                    routings, costs = batch_evaluate(chunk)
                    better = np.flatnonzero(costs < best_cost - 1e-12)
                    if better.size:
                        pick = int(better[0])
                        caching = chunk[pick].copy()
                        best_routing = routings[pick].copy()
                        best_cost = float(costs[pick])
                        improved = True
                        break
        else:
            for f_out in cached_files:
                for f_in in candidates:
                    trial = caching.copy()
                    trial[f_out] = 0.0
                    trial[f_in] = 1.0
                    routing, cost = evaluate(trial)
                    if cost < best_cost - 1e-12:
                        caching, best_routing, best_cost = trial, routing, cost
                        improved = True
                        break
                if improved:
                    break
        if not improved:
            break
    return caching, best_routing, best_cost


def solve_subproblem(
    problem: ProblemInstance,
    sbs: int,
    aggregate_others: np.ndarray,
    config: Optional[SubproblemConfig] = None,
    *,
    prices: Optional[np.ndarray] = None,
    cap_slack: float = 0.0,
    initial_multipliers: Optional[np.ndarray] = None,
    candidate_caching: Optional[np.ndarray] = None,
    workspace: Optional[SubproblemWorkspace] = None,
    constant_offset: float = 0.0,
) -> SubproblemSolution:
    """Solve ``P_n`` by the paper's dual decomposition with primal recovery.

    ``prices`` (shape ``(U, F)``) and ``cap_slack`` support the enhanced
    price-coordination mode of the distributed optimizer: prices add a
    per-unit congestion charge to the routing coefficients, and
    ``cap_slack`` loosens the residual caps by a constant so contested
    pairs can be transiently over-served while the prices equilibrate.
    With the defaults (no prices, zero slack) this is exactly the
    paper's subproblem; the reported ``cost`` is the (price-augmented)
    local objective.

    ``initial_multipliers`` warm-starts the dual ascent — across
    Gauss-Seidel iterations the aggregate changes little, so reusing the
    previous multipliers reaches the dual region in far fewer steps
    (the :class:`~repro.core.distributed.SBSAgent` passes its last
    multipliers when ``DistributedConfig.warm_start`` is enabled).
    ``candidate_caching`` seeds the primal recovery with an incumbent
    cache set (evaluated exactly under the current caps), guaranteeing
    the returned solution is never worse than keeping the incumbent —
    which is what makes every Gauss-Seidel phase non-increasing
    regardless of dual-ascent noise.

    ``workspace`` supplies preallocated scratch buffers for the fast
    oracle (one is created per call when omitted); repeat callers should
    hold one :class:`SubproblemWorkspace` per SBS and pass it in.

    ``constant_offset`` is added to the ``y``-independent constant term.
    The sparse solver passes the BS cost of the demand *outside* the
    SBS's reach so a compact local view reports its objective on the
    same absolute scale as the dense solver — the dual ascent's
    relative stall tolerances then see (up to summation order) the same
    magnitudes and take the same trajectory.  The default ``0.0`` is a
    bit-exact no-op.
    """
    config = config or SubproblemConfig()
    problem._check_sbs(sbs)
    num_groups, num_files = problem.num_groups, problem.num_files
    perf.count("subproblem.solves")
    # Arrays are validated once here, at the API boundary; the oracles
    # below trust them for the whole dual ascent.
    aggregate_others = as_float_array(
        aggregate_others, "aggregate_others", shape=(num_groups, num_files)
    )
    mode = config.resolved_oracle()
    use_fast = mode != "legacy"
    if workspace is not None:
        # Buffers adapt to the problem at hand: a workspace reused across
        # sweep cells of different (U, F) shapes is re-allocated, never
        # trusted blindly.
        workspace.ensure_shape((num_groups, num_files))
    if use_fast and workspace is None:
        workspace = SubproblemWorkspace(problem)
    caps = residual_caps(
        problem,
        sbs,
        aggregate_others,
        out=workspace.caps if use_fast else None,
        validate=False,
    )
    if cap_slack < 0:
        raise ValidationError(f"cap_slack must be nonnegative, got {cap_slack}")
    if cap_slack > 0:
        reach = problem.connectivity[sbs][:, np.newaxis]
        caps = np.minimum(caps + cap_slack * reach, reach)
    if prices is not None:
        prices = np.asarray(prices, dtype=np.float64)
        if prices.shape != (num_groups, num_files):
            raise ValidationError(
                f"prices must have shape {(num_groups, num_files)}"
            )
    constant = _constant_term(problem, sbs, aggregate_others) + constant_offset
    coefficients = _routing_coefficients(problem, sbs)
    tie_break = (problem.savings_margin()[sbs][:, np.newaxis] * problem.demand * caps).sum(axis=0)
    capacity = int(problem.cache_slots()[sbs])

    schedule = config.schedule
    if schedule is None:
        scale = float(np.max(np.abs(coefficients), initial=0.0))
        # Warm-started duals sit near the optimum already: restart with a
        # quarter of the cold step so successive Gauss-Seidel iterations
        # don't re-inject oscillation into an almost-converged dual.
        eta0_factor = 0.125 if initial_multipliers is not None else 0.5
        schedule = StepSchedule(eta0=max(scale, 1e-12) * eta0_factor, alpha=0.25)

    priced = coefficients if prices is None else coefficients + prices

    batch_evaluate: Optional[Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]]] = None
    if use_fast:
        # Everything invariant across dual iterations, hoisted out of the
        # loop: flat views of the priced coefficients and caps, the shared
        # demand weights, and the tie-break filler order.
        ws = workspace
        coefficients_flat = coefficients.ravel()
        priced_flat = priced.ravel()
        prices_flat = None if prices is None else prices.ravel()
        caps_flat = caps.ravel()
        weights_flat = problem.demand_flat()
        bandwidth = float(problem.bandwidth[sbs])
        filler_order = np.argsort(-tie_break, kind="stable")

    if mode == "batched":
        # Row 0 of the knapsack batch is the dual routing subproblem
        # (costs change with mu each iteration), row 1 is primal
        # recovery (costs are the fixed priced coefficients, only the
        # cache-masked caps change) — row 1's value-density sort is paid
        # exactly once per solve, and every polish trial reuses it too.
        kw = ws.knapsack
        kw.bind_weights(weights_flat)
        np.copyto(ws.batch_costs[1], priced_flat)
        kw.prepare_row(1, ws.batch_costs[1])
        caps_eff_flat = ws.batch_caps[1]
        caps_eff = caps_eff_flat.reshape(num_groups, num_files)

        def evaluate(caching: np.ndarray) -> Tuple[np.ndarray, float]:
            np.multiply(caps, caching[np.newaxis, :], out=caps_eff)
            alloc = kw.solve_row(1, caps_eff_flat, bandwidth)
            np.multiply(priced_flat, alloc, out=ws.prod_flat)
            cost = constant + float(np.add.reduce(ws.prod_flat))
            return alloc.reshape(num_groups, num_files).copy(), cost

        # The recovery row's costs (the priced coefficients) are fixed
        # for the whole solve, so its paid prefix, greedy order and the
        # caps gathered along it are hoisted here; a polish trial then
        # only contributes its (F,)-sized cache mask, gathered from the
        # tiny trial matrix instead of a (T, U*F) effective-caps build.
        recovery_paid = int(kw.paid_count[1])
        recovery_order = kw.order[1, :recovery_paid]
        recovery_file = recovery_order % num_files
        recovery_caps = caps_flat.take(recovery_order)
        recovery_w_eff = kw.w_eff[1, :recovery_paid]
        recovery_w = kw.w_sorted[1, :recovery_paid]

        def recover(caching: np.ndarray) -> Tuple[np.ndarray, float]:
            """Recovery evaluation of one cache set — the T=1 kernel."""
            perf.count("knapsack.batched_rows")
            allocation = kw.allocation[1]
            allocation.fill(0.0)
            if recovery_paid:
                sorted_full = kw.sorted_full[1, :recovery_paid]
                np.multiply(recovery_caps, caching.take(recovery_file), out=sorted_full)
                np.multiply(sorted_full, recovery_w_eff, out=sorted_full)
                before = kw.before[1, :recovery_paid]
                before[0] = 0.0
                sorted_full[:-1].cumsum(out=before[1:])
                take = kw.take[1, :recovery_paid]
                np.subtract(bandwidth, before, out=take)
                np.maximum(take, 0.0, out=take)
                np.minimum(take, sorted_full, out=take)
                positive = kw.positive[1, :recovery_paid]
                np.greater(take, 0.0, out=positive)
                vals = kw.vals[1, :recovery_paid]
                vals.fill(0.0)
                np.divide(take, recovery_w, out=vals, where=positive)
                allocation[recovery_order] = vals
            if kw.has_free(1):
                free_cols = np.flatnonzero(kw.free[1])
                allocation[free_cols] = caps_flat[free_cols] * caching[free_cols % num_files]
            np.multiply(priced_flat, allocation, out=ws.prod_flat)
            return allocation, constant + float(np.add.reduce(ws.prod_flat))

        def batch_evaluate(trials: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
            count = trials.shape[0]
            perf.count("knapsack.batched_rows", count)
            scratch = ws.trial_scratch
            allocation = scratch.allocation[:count]
            allocation.fill(0.0)
            if recovery_paid:
                sorted_full = scratch.sorted_full[:count, :recovery_paid]
                # Same grouping as the scalar path: (cap * trial) * w.
                np.multiply(recovery_caps, trials[:, recovery_file], out=sorted_full)
                np.multiply(sorted_full, recovery_w_eff, out=sorted_full)
                before = scratch.before[:count, :recovery_paid]
                before[:, 0] = 0.0
                sorted_full[:, :-1].cumsum(axis=1, out=before[:, 1:])
                take = scratch.take[:count, :recovery_paid]
                np.subtract(bandwidth, before, out=take)
                np.maximum(take, 0.0, out=take)
                np.minimum(take, sorted_full, out=take)
                positive = scratch.positive[:count, :recovery_paid]
                np.greater(take, 0.0, out=positive)
                vals = scratch.vals[:count, :recovery_paid]
                vals.fill(0.0)
                np.divide(take, recovery_w, out=vals, where=positive)
                allocation[:, recovery_order] = vals
            if kw.has_free(1):
                free = kw.free[1]
                free_cols = np.flatnonzero(free)
                allocation[:, free_cols] = (
                    caps_flat[free_cols] * trials[:, free_cols % num_files]
                )
            products = ws.trial_prod[:count]
            np.multiply(allocation, priced_flat, out=products)
            costs_of_trials = constant + np.add.reduce(products, axis=1)
            return allocation.reshape(-1, num_groups, num_files), costs_of_trials

    elif use_fast:

        def evaluate(caching: np.ndarray) -> Tuple[np.ndarray, float]:
            np.multiply(caps, caching[np.newaxis, :], out=ws.effective_caps)
            result = solve_fractional_knapsack(
                priced_flat,
                weights_flat,
                bandwidth,
                ws.effective_caps.ravel(),
                validate=False,
            )
            routing = result.allocation.reshape(num_groups, num_files)
            return routing, constant + float(np.sum(priced * routing))

    else:

        def evaluate(caching: np.ndarray) -> Tuple[np.ndarray, float]:
            return _evaluate_cache_set(problem, sbs, caching, caps, constant, prices)

    best: dict = {"cost": np.inf, "caching": None, "routing": None}
    if candidate_caching is not None:
        seed_caching = as_float_array(
            candidate_caching, "candidate_caching", shape=(num_files,)
        )
        seed_routing, seed_cost = evaluate(seed_caching)
        best.update(cost=seed_cost, caching=seed_caching, routing=seed_routing)

    if mode == "hoisted":

        def oracle(multipliers: np.ndarray):
            mu = multipliers.reshape(num_groups, num_files)
            aggregated = mu.sum(axis=0)
            caching = _select_cache_set(num_files, capacity, aggregated, filler_order)
            np.add(coefficients_flat, multipliers, out=ws.costs_flat)
            if prices_flat is not None:
                ws.costs_flat += prices_flat
            result = solve_fractional_knapsack(
                ws.costs_flat, weights_flat, bandwidth, caps_flat, validate=False
            )
            routing = result.allocation.reshape(num_groups, num_files)
            np.add(priced_flat, multipliers, out=ws.priced_mu_flat)
            dual_value = (
                constant
                + float(np.sum(ws.priced_mu_flat * result.allocation))
                - float(np.sum(aggregated * caching))
            )
            subgradient = routing - caching[np.newaxis, :]
            # Primal recovery: evaluate the candidate cache set exactly.
            recovered_routing, recovered_cost = evaluate(caching)
            if recovered_cost < best["cost"]:
                best["cost"] = recovered_cost
                best["caching"] = caching
                best["routing"] = recovered_routing
            return dual_value, subgradient.ravel(), None

    elif mode == "legacy":

        def oracle(multipliers: np.ndarray):
            mu = multipliers.reshape(num_groups, num_files)
            caching = cache_subproblem(problem, sbs, mu, tie_break_value=tie_break)
            routing = routing_subproblem(problem, sbs, mu, caps, extra_cost=prices)
            dual_value = (
                constant
                + float(np.sum((priced + mu) * routing))
                - float(np.sum(mu.sum(axis=0) * caching))
            )
            subgradient = routing - caching[np.newaxis, :]
            # Primal recovery: evaluate the candidate cache set exactly.
            recovered_routing, recovered_cost = evaluate(caching)
            if recovered_cost < best["cost"]:
                best["cost"] = recovered_cost
                best["caching"] = caching
                best["routing"] = recovered_routing
            return dual_value, subgradient.ravel(), None

    if initial_multipliers is None:
        start = np.zeros(num_groups * num_files)
    else:
        start = np.asarray(initial_multipliers, dtype=np.float64).ravel()
        if start.size != num_groups * num_files:
            raise ValidationError(
                "initial_multipliers must have U*F entries, got "
                f"{start.size}"
            )
        start = np.maximum(start, 0.0)
    if mode == "batched":
        # Inlined projected-subgradient ascent: the exact control flow of
        # :func:`repro.solvers.subgradient.subgradient_ascent` with the
        # oracle fused in.  One knapsack batch (dual routing + primal
        # recovery) and three in-place array ops per multiplier update —
        # nothing allocated per iteration beyond the argsort of row 0 and
        # the (F,)-sized cache-set selection.
        mu = ws.mu_flat
        np.copyto(mu, start)
        np.maximum(mu, 0.0, out=mu)
        # Row 0's caps never change during the ascent, so the greedy's
        # ``caps * weights`` products are computed exactly once.
        cw_flat = caps_flat * weights_flat
        mu2 = mu.reshape(num_groups, num_files)
        sub2 = ws.subgrad_flat.reshape(num_groups, num_files)
        best_dual = -np.inf
        dual_history = []
        stall = 0
        converged = False
        # The recovery row depends only on the candidate cache set, and
        # the dual iterates oscillate between a handful of sets: any set
        # seen before is skipped outright — its evaluation is
        # deterministic, and the strict < of the best-update means an
        # equal cost never changes the incumbent.
        seen_cache_sets: set = set()
        for iteration in range(config.max_iter):
            # ``np.add.reduce`` is what ``np.sum`` dispatches to — same
            # pairwise summation, minus the wrapper overhead that shows
            # up at this call frequency.
            np.add.reduce(mu2, axis=0, out=ws.aggregated)
            caching = _select_cache_set(num_files, capacity, ws.aggregated, filler_order)
            np.add(coefficients_flat, mu, out=ws.batch_costs[0])
            if prices_flat is not None:
                ws.batch_costs[0] += prices_flat
            kw.prepare_row(0, ws.batch_costs[0])
            alloc0 = kw.solve_row_scaled(0, cw_flat, caps_flat, bandwidth)
            cache_key = caching.tobytes()
            if cache_key not in seen_cache_sets:
                seen_cache_sets.add(cache_key)
                recovered_routing, recovered_cost = recover(caching)
                if recovered_cost < best["cost"]:
                    best["cost"] = recovered_cost
                    best["caching"] = caching
                    best["routing"] = recovered_routing.reshape(
                        num_groups, num_files
                    ).copy()
            np.add(priced_flat, mu, out=ws.priced_mu_flat)
            np.multiply(ws.priced_mu_flat, alloc0, out=ws.prod_flat)
            dual_value = (
                constant
                + float(np.add.reduce(ws.prod_flat))
                - float(np.add.reduce(ws.aggregated * caching))
            )
            dual_history.append(float(dual_value))
            improved = dual_value > best_dual + config.tol * max(1.0, abs(best_dual))
            if dual_value > best_dual:
                best_dual = float(dual_value)
            stall = 0 if improved else stall + 1
            if stall >= config.patience:
                converged = True
                break
            np.subtract(
                alloc0.reshape(num_groups, num_files), caching[np.newaxis, :], out=sub2
            )
            np.multiply(ws.subgrad_flat, schedule(iteration), out=ws.subgrad_flat)
            np.add(mu, ws.subgrad_flat, out=mu)
            np.maximum(mu, 0.0, out=mu)
        result = SubgradientResult(
            multipliers=mu.copy(),
            best_dual=best_dual,
            best_payload=None,
            dual_history=dual_history,
            iterations=len(dual_history),
            converged=converged,
        )
    else:
        result = subgradient_ascent(
            oracle,
            start,
            schedule=schedule,
            max_iter=config.max_iter,
            tol=config.tol,
            patience=config.patience,
        )
    perf.count("subgradient.iterations", result.iterations)

    caching, routing, cost = best["caching"], best["routing"], best["cost"]
    if caching is None:  # pragma: no cover - oracle always runs at least once
        raise ValidationError("subgradient ascent performed no iterations")
    if config.polish:
        caching, routing, cost = _polish_cache_set(
            caching,
            routing,
            cost,
            evaluate=evaluate,
            potential=tie_break,
            capacity=capacity,
            batch_evaluate=batch_evaluate,
        )
    return SubproblemSolution(
        caching=caching,
        routing=routing,
        cost=cost,
        best_dual=result.best_dual,
        dual_history=tuple(result.dual_history),
        iterations=result.iterations,
        converged=result.converged,
        multipliers=result.multipliers.reshape(
            num_groups, num_files
        ),
    )


def solve_subproblem_exhaustive(
    problem: ProblemInstance,
    sbs: int,
    aggregate_others: np.ndarray,
    *,
    max_subsets: int = 200_000,
) -> SubproblemSolution:
    """Exact ``P_n`` optimum by enumerating every feasible cache set.

    Exponential in ``F``; guarded by ``max_subsets``.  Used in tests to
    certify the dual-decomposition solver.
    """
    problem._check_sbs(sbs)
    caps = residual_caps(problem, sbs, aggregate_others)
    constant = _constant_term(problem, sbs, aggregate_others)
    capacity = int(np.floor(problem.cache_capacity[sbs] + 1e-9))
    capacity = min(capacity, problem.num_files)
    from math import comb

    total = sum(comb(problem.num_files, k) for k in range(capacity + 1))
    if total > max_subsets:
        raise ValidationError(
            f"exhaustive search would enumerate {total} subsets (> {max_subsets})"
        )
    best_cost = np.inf
    best_caching: Optional[np.ndarray] = None
    best_routing: Optional[np.ndarray] = None
    files = range(problem.num_files)
    for size in range(capacity + 1):
        for subset in itertools.combinations(files, size):
            caching = np.zeros(problem.num_files)
            caching[list(subset)] = 1.0
            routing, cost = _evaluate_cache_set(problem, sbs, caching, caps, constant)
            if cost < best_cost - 1e-12:
                best_cost, best_caching, best_routing = cost, caching, routing
    assert best_caching is not None and best_routing is not None
    return SubproblemSolution(
        caching=best_caching,
        routing=best_routing,
        cost=best_cost,
        best_dual=np.nan,
        dual_history=(),
        iterations=0,
        converged=True,
    )
