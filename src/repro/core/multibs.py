"""Multi-BS operation (Section II: "our analysis can be easily extended
for multiple BSs").

With several macro base stations, each MU group is anchored to exactly
one BS (its macro cell) and each SBS serves groups of one macro cell;
cells do not interfere in the model because serving costs are additive
and constraint (4) is per (group, file).  The joint problem therefore
*decomposes by cell*, which is precisely why the paper calls the
extension easy — and what this module expresses:

* :func:`split_by_region` partitions a problem into independent
  per-cell :class:`~repro.core.problem.ProblemInstance` objects (each
  SBS is assigned to the cell containing its connected groups; an SBS
  spanning two cells would couple them, so it is rejected);
* :func:`solve_multibs` runs the distributed algorithm per cell —
  optionally in privacy mode — and aggregates costs; correctness is
  certified in the tests against solving the original joint problem.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import rng_from
from ..exceptions import ValidationError
from ..privacy.factory import MechanismConfig
from .distributed import DistributedConfig, DistributedResult, solve_distributed
from .problem import ProblemInstance

__all__ = ["Region", "MultiBSResult", "split_by_region", "solve_multibs"]


@dataclasses.dataclass(frozen=True)
class Region:
    """One macro cell: its sub-problem plus the original index mappings."""

    name: str
    problem: ProblemInstance
    group_indices: Tuple[int, ...]
    sbs_indices: Tuple[int, ...]


@dataclasses.dataclass
class MultiBSResult:
    """Per-cell results and network-wide totals."""

    results: Dict[str, DistributedResult]
    regions: Dict[str, Region]

    def total_cost(self) -> float:
        """Network-wide serving cost (sum over cells)."""
        return float(sum(result.cost for result in self.results.values()))

    def total_iterations(self) -> int:
        """Total Gauss-Seidel iterations across cells."""
        return sum(result.iterations for result in self.results.values())


def split_by_region(
    problem: ProblemInstance, region_of_group: Sequence[int]
) -> List[Region]:
    """Partition a problem into independent per-cell sub-problems.

    ``region_of_group[u]`` is the cell id of MU group ``u``.  Every SBS
    must have all its links inside a single cell; an SBS with zero links
    is assigned to cell 0 (it is irrelevant anywhere).
    """
    labels = np.asarray(region_of_group, dtype=np.int64)
    if labels.shape != (problem.num_groups,):
        raise ValidationError(
            f"region_of_group must have one entry per MU group "
            f"({problem.num_groups}), got shape {labels.shape}"
        )
    region_ids = sorted(set(int(r) for r in labels))

    # Assign each SBS to the unique cell it touches.
    sbs_region: List[int] = []
    for n in range(problem.num_sbs):
        touched = set(int(labels[u]) for u in problem.neighbours_of_sbs(n))
        if len(touched) > 1:
            raise ValidationError(
                f"SBS {n} has links into cells {sorted(touched)}; "
                "cross-cell SBSs couple the cells and break the decomposition"
            )
        sbs_region.append(touched.pop() if touched else region_ids[0])

    regions: List[Region] = []
    for region_id in region_ids:
        group_idx = np.flatnonzero(labels == region_id)
        sbs_idx = [n for n in range(problem.num_sbs) if sbs_region[n] == region_id]
        if group_idx.size == 0:
            continue
        if not sbs_idx:
            # A cell with no SBSs still exists: the BS serves everything.
            # Model it with one dummy SBS with zero capacity so the
            # ProblemInstance stays well-formed.
            sub = ProblemInstance(
                demand=problem.demand[group_idx],
                connectivity=np.zeros((1, group_idx.size)),
                cache_capacity=np.zeros(1),
                bandwidth=np.zeros(1),
                sbs_cost=np.ones((1, group_idx.size)),
                bs_cost=problem.bs_cost[group_idx],
            )
            regions.append(
                Region(
                    name=f"cell-{region_id}",
                    problem=sub,
                    group_indices=tuple(int(u) for u in group_idx),
                    sbs_indices=(),
                )
            )
            continue
        sub = ProblemInstance(
            demand=problem.demand[group_idx],
            connectivity=problem.connectivity[np.ix_(sbs_idx, group_idx)],
            cache_capacity=problem.cache_capacity[sbs_idx],
            bandwidth=problem.bandwidth[sbs_idx],
            sbs_cost=problem.sbs_cost[np.ix_(sbs_idx, group_idx)],
            bs_cost=problem.bs_cost[group_idx],
        )
        regions.append(
            Region(
                name=f"cell-{region_id}",
                problem=sub,
                group_indices=tuple(int(u) for u in group_idx),
                sbs_indices=tuple(sbs_idx),
            )
        )
    return regions


def solve_multibs(
    regions: Sequence[Region],
    config: Optional[DistributedConfig] = None,
    *,
    privacy: Optional[MechanismConfig] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> MultiBSResult:
    """Run Algorithm 1 independently in every cell."""
    if not regions:
        raise ValidationError("regions must be nonempty")
    generator = rng_from(rng)
    results: Dict[str, DistributedResult] = {}
    for region in regions:
        child_seed = int(generator.integers(np.iinfo(np.int64).max))
        results[region.name] = solve_distributed(
            region.problem, config, privacy=privacy, rng=child_seed
        )
    return MultiBSResult(
        results=results, regions={region.name: region for region in regions}
    )
