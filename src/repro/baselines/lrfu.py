"""LRFU cache replacement (Lee et al., IEEE ToC 2001).

The paper's comparison baseline: "LRFU is a classic caching replacement
scheme which swaps the cached content based on the recent request
frequency and time."  LRFU assigns every block a *Combined Recency and
Frequency* (CRF) value using the weighting function
``F(x) = (1/2)^(lambda * x)``:

* on a reference at time ``t`` to a block last referenced at ``t0``:
  ``CRF(t) = F(0) + F(t - t0) * CRF(t0) = 1 + 2^(-lambda (t - t0)) * CRF(t0)``;
* at any time, a block's current CRF decays to
  ``2^(-lambda (t - t0)) * CRF(t0)``;
* on a miss with a full cache, the block with the smallest current CRF
  is evicted.

``lambda = 0`` degenerates to LFU (pure frequency); ``lambda -> 1`` (in
units where consecutive references are one time step apart) approaches
LRU (pure recency).  :class:`LRFUCache` implements the policy with lazy
decay — CRFs are stored with their timestamp and decayed on demand, so
every operation is ``O(cache size)`` worst case and ``O(1)`` amortized
for hits.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from .._validation import check_nonnegative_float
from ..exceptions import ValidationError

__all__ = ["LRFUCache", "CacheStats"]


@dataclasses.dataclass
class CacheStats:
    """Hit/miss/eviction counters for a replacement-policy run."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


@dataclasses.dataclass
class _Entry:
    crf: float
    last_time: float


class LRFUCache:
    """An LRFU-managed cache of unit-size contents.

    Parameters
    ----------
    capacity:
        Maximum number of cached contents (``C_n`` of the model).
    decay:
        The LRFU ``lambda`` in ``[0, 1]``.  ``0`` = LFU, larger values
        weigh recency more heavily.
    """

    def __init__(self, capacity: int, decay: float = 0.1) -> None:
        if capacity < 0:
            raise ValidationError(f"capacity must be nonnegative, got {capacity}")
        check_nonnegative_float(decay, "decay")
        if decay > 1.0:
            raise ValidationError(f"decay must lie in [0, 1], got {decay}")
        self.capacity = int(capacity)
        self.decay = float(decay)
        self._entries: Dict[int, _Entry] = {}
        self._clock = 0.0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def _decayed_crf(self, entry: _Entry, now: float) -> float:
        elapsed = max(0.0, now - entry.last_time)
        return entry.crf * 2.0 ** (-self.decay * elapsed)

    def contains(self, file: int) -> bool:
        """Whether ``file`` is currently cached."""
        return file in self._entries

    @property
    def contents(self) -> Set[int]:
        """The set of currently cached content ids."""
        return set(self._entries)

    def crf_of(self, file: int, now: Optional[float] = None) -> float:
        """Current (decayed) CRF of a cached file; 0 when absent."""
        entry = self._entries.get(file)
        if entry is None:
            return 0.0
        return self._decayed_crf(entry, self._clock if now is None else now)

    # ------------------------------------------------------------------
    def access(self, file: int, time: float) -> bool:
        """Process a reference; returns ``True`` on a cache hit.

        Misses insert the file (fetch-on-miss), evicting the minimum-CRF
        victim when full.  Time must be non-decreasing.
        """
        if time < self._clock - 1e-12:
            raise ValidationError(
                f"time went backwards: {time} after {self._clock}"
            )
        self._clock = max(self._clock, time)
        entry = self._entries.get(file)
        if entry is not None:
            entry.crf = 1.0 + self._decayed_crf(entry, time)
            entry.last_time = time
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if self.capacity == 0:
            return False
        if len(self._entries) >= self.capacity:
            victim = min(
                self._entries,
                key=lambda f: (self._decayed_crf(self._entries[f], time), f),
            )
            new_crf = 1.0
            if self._decayed_crf(self._entries[victim], time) > new_crf:
                # LRFU admits only blocks at least as valuable as the victim;
                # with F(0)=1 a fresh block always wins ties, so in practice
                # this branch fires only for extremely hot victims.
                return False
            del self._entries[victim]
            self.stats.evictions += 1
        self._entries[file] = _Entry(crf=1.0, last_time=time)
        return False

    def warm(self, files, time: float = 0.0) -> None:
        """Pre-populate the cache (up to capacity) without counting stats."""
        for file in files:
            if len(self._entries) >= self.capacity:
                break
            self._entries.setdefault(int(file), _Entry(crf=1.0, last_time=time))
