"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one table/figure of the paper, saves the
rendered series under ``benchmarks/results/`` and attaches the headline
numbers to the pytest-benchmark record (``extra_info``), so a
``pytest benchmarks/ --benchmark-only`` run leaves a complete, diffable
record of the reproduction.

Set ``REPRO_BENCH_FULL=1`` to run the full-fidelity sweeps (three seeds,
tighter convergence); the default single-seed runs keep the suite fast
while preserving every qualitative conclusion.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_fidelity() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def save_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n=== {name} ===\n{text}")
