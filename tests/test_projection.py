"""Tests for Euclidean projections, incl. hypothesis property checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.solvers.projection import (
    project_box,
    project_capped_simplex,
    project_nonnegative,
    project_simplex,
)

finite_floats = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)
vectors = arrays(np.float64, st.integers(1, 12), elements=finite_floats)


class TestNonnegative:
    def test_basic(self):
        np.testing.assert_allclose(project_nonnegative([-1.0, 0.5]), [0.0, 0.5])

    @given(vectors)
    def test_idempotent(self, v):
        once = project_nonnegative(v)
        np.testing.assert_allclose(project_nonnegative(once), once)

    @given(vectors)
    def test_never_negative(self, v):
        assert project_nonnegative(v).min() >= 0.0


class TestBox:
    def test_basic(self):
        out = project_box([-1.0, 0.5, 2.0], 0.0, 1.0)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ValidationError):
            project_box([0.5], 1.0, 0.0)

    def test_broadcast_bounds(self):
        out = project_box([[2.0, -2.0]], [0.0, -1.0], [1.0, 0.0])
        np.testing.assert_allclose(out, [[1.0, -1.0]])

    @given(vectors)
    def test_within_bounds(self, v):
        out = project_box(v, -1.0, 1.0)
        assert out.min() >= -1.0 and out.max() <= 1.0


class TestSimplex:
    def test_already_on_simplex(self):
        v = np.array([0.25, 0.75])
        np.testing.assert_allclose(project_simplex(v), v)

    def test_uniform_from_large(self):
        out = project_simplex(np.array([5.0, 5.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_radius(self):
        out = project_simplex(np.array([3.0, 1.0]), radius=2.0)
        assert out.sum() == pytest.approx(2.0)

    def test_bad_radius(self):
        with pytest.raises(ValidationError):
            project_simplex(np.array([1.0]), radius=0.0)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            project_simplex(np.array([]))

    @given(vectors)
    @settings(max_examples=50)
    def test_on_simplex(self, v):
        out = project_simplex(v)
        assert out.min() >= -1e-12
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(vectors)
    @settings(max_examples=30)
    def test_is_closest_point(self, v):
        """Projection is closer than random simplex points."""
        out = project_simplex(v)
        rng = np.random.default_rng(0)
        for _ in range(5):
            other = rng.dirichlet(np.ones(v.size))
            assert np.sum((v - out) ** 2) <= np.sum((v - other) ** 2) + 1e-9


class TestCappedSimplex:
    def test_budget_slack_is_noop_beyond_clip(self):
        v = np.array([0.2, 0.3])
        out = project_capped_simplex(v, radius=5.0)
        np.testing.assert_allclose(out, v)

    def test_budget_enforced(self):
        out = project_capped_simplex(np.array([1.0, 1.0, 1.0]), radius=1.5)
        assert out.sum() <= 1.5 + 1e-9

    def test_caps_enforced(self):
        out = project_capped_simplex(np.array([2.0, 2.0]), radius=10.0, cap=np.array([0.5, 0.7]))
        assert out[0] <= 0.5 + 1e-12 and out[1] <= 0.7 + 1e-12

    def test_negative_cap_rejected(self):
        with pytest.raises(ValidationError):
            project_capped_simplex(np.array([1.0]), radius=1.0, cap=np.array([-0.1]))

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            project_capped_simplex(np.array([1.0]), radius=-1.0)

    @given(vectors, st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=50)
    def test_feasible(self, v, radius):
        out = project_capped_simplex(v, radius=radius)
        assert out.min() >= -1e-12
        assert out.max() <= 1.0 + 1e-9
        assert out.sum() <= radius + 1e-6
