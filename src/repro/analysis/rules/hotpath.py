"""Hot-path rule: no Python-level loops where batched kernels exist.

The modules on the Algorithm 1 hot path — the subproblem oracle, the
fractional knapsack, the subgradient ascent — are vectorized: their
inner work runs as batched numpy kernels, and a stray ``for`` loop over
group/file indices silently reverts a kernel to per-element Python
(the regression the batched-oracle benchmarks exist to catch).

* ``python-loop-in-hot-path`` — flag every ``for`` statement in a hot
  module except the dual-ascent outer iteration (``for iteration in
  ...``), which is inherently sequential.  Loops that are justified —
  the polish swap chain (each accepted swap changes the incumbent), the
  exhaustive reference oracle, bounded chunk dispatch — carry baseline
  ratchet entries rather than pragmas, so any *new* loop trips CI until
  it is either vectorized or explicitly accepted into the baseline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..findings import Finding
from .base import FileContext, Rule, register

__all__ = ["PythonLoopInHotPath"]

#: Modules whose inner loops must be numpy kernels, not Python ``for``.
HOT_MODULES = frozenset(
    {
        "repro.core.subproblem",
        "repro.solvers.fractional_knapsack",
        "repro.solvers.subgradient",
    }
)

#: Loop targets that name the sequential outer iteration of a dual
#: ascent — the one loop the decomposition cannot batch away.
_SEQUENTIAL_TARGETS = frozenset({"iteration"})


@register
class PythonLoopInHotPath(Rule):
    """Flag scalar ``for`` loops inside the batched hot modules."""

    code = "REPRO304"
    name = "python-loop-in-hot-path"
    summary = "Python for-loop in a batched hot module; vectorize or baseline it"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Flag For statements in hot modules, outer dual iteration excepted."""
        if ctx.module not in HOT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            target = node.target
            if (
                isinstance(target, ast.Name)
                and target.id in _SEQUENTIAL_TARGETS
            ):
                continue
            yield self.finding(
                ctx,
                node,
                "Python-level loop on the batched hot path; vectorize it into "
                "a numpy kernel, or accept it into the baseline with a "
                "justification if it is inherently sequential",
            )
