"""Process-level distributed runtime for Algorithm 1 (socket transport).

Everything under :mod:`repro.core.distributed` executes the protocol as
an in-process simulation: one Python object per agent, messages moved by
function calls.  This package runs the *same* protocol over real local
TCP sockets — each SBS is an asyncio task or a separate OS process
speaking the seq/ack/retry ``POLICY_UPLOAD`` protocol in a length-prefixed,
CRC-protected wire format, and the BS is an aggregation server.

Guarantees (pinned by ``tests/test_runtime.py`` and the CI
``runtime-smoke`` job):

* a fault-free socket run produces a **bit-identical** trace and
  :class:`~repro.core.solution.Solution` to
  ``solve_distributed(problem, config, faults=FaultConfig())``;
* chaos runs (the :class:`ChaosProxy` socket MITM driven by the same
  :class:`~repro.network.faults.FaultConfig` vocabulary) are
  deterministic per seed and still satisfy every ``repro-trace
  validate`` invariant;
* stragglers and byzantine reports degrade phases, never the run — see
  ``docs/failure_model.md`` for the threat model.
"""

from .chaos import ChaosProxy, ProxyStats
from .client import client_main, run_client
from .config import ADVERSARY_MODES, ClientSession, RuntimeConfig, RuntimeReport
from .server import RuntimeServer, solve_over_sockets
from .wire import (
    MAX_FRAME_BYTES,
    WIRE_VERSION,
    Frame,
    FrameHeader,
    FrameSource,
    decode_frame,
    encode_frame,
    frame_from_message,
    peek_header,
    read_frame,
    read_frame_bytes,
    write_frame,
    write_raw,
)

__all__ = [
    "ADVERSARY_MODES",
    "MAX_FRAME_BYTES",
    "WIRE_VERSION",
    "ChaosProxy",
    "ClientSession",
    "Frame",
    "FrameHeader",
    "FrameSource",
    "ProxyStats",
    "RuntimeConfig",
    "RuntimeReport",
    "RuntimeServer",
    "client_main",
    "decode_frame",
    "encode_frame",
    "frame_from_message",
    "peek_header",
    "read_frame",
    "read_frame_bytes",
    "run_client",
    "solve_over_sockets",
    "write_frame",
    "write_raw",
]
