"""The taint model: sources, sanitizers, sinks, discovered statically.

The model maps the paper's threat boundary onto program elements:

========== =======================================================
role       meaning
========== =======================================================
source     raw demand enters the program (``ProblemInstance.demand``
           reads, workload request streams, each SBS's pre-noise
           ``true_routing``) — Section II's per-MU content demand
sanitizer  a :mod:`repro.privacy` mechanism call whose output may be
           released *iff* the flow also books the accountant
           (Definition 2 / Theorem 4)
sink       an egress surface crossing the SBS trust boundary:
           channel sends, wire frames, trace emission, exports —
           what Section IV's eavesdropper (or anything downstream)
           can observe
booking    the accountant call that records one release's epsilon
carrier    a message/frame class whose construction transports its
           payload's taint (everything else is a struct boundary)
========== =======================================================

Declarations live *in the analyzed code* as ``taint.*`` decorators and
``taint.source_attribute`` calls (see :mod:`.decl`); this module reads
them back out of the AST — the analyzer never imports the program it
checks.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple, Union

__all__ = ["CLEAN_CALLS", "RoleSpec", "TaintModel", "extract_declarations", "build_model"]

#: Call targets (by trailing dotted name) whose result is always clean:
#: constructors of fresh buffers, pure shape/metadata helpers, clocks.
#: Everything else unknown propagates the union of its argument taints,
#: which is what carries taint through numpy ufuncs and casts.
CLEAN_CALLS: Set[str] = {
    "len",
    "range",
    "isinstance",
    "issubclass",
    "hasattr",
    "getattr_static",
    "id",
    "type",
    "repr",
    "zeros",
    "zeros_like",
    "ones",
    "ones_like",
    "empty",
    "empty_like",
    "arange",
    "eye",
    "linspace",
    "iinfo",
    "finfo",
    "perf_counter",
    "monotonic",
    "time",
    "Lock",
    "RLock",
    "Event",
    "deque",
    "get_running_loop",
    "get_event_loop",
}

#: Decorator attribute names recognized as taint declarations.  The
#: decorator expression must be spelled through a ``taint``/``decl``
#: namespace (``@taint.sink("bs-upload")``) — the idiom this package's
#: docstring prescribes — so an unrelated local ``def sink()`` never
#: becomes a declaration by accident.
_ROLE_NAMES = {"source", "sanitizer", "sink", "booking", "declassifier", "carrier"}
_NAMESPACES = {"taint", "decl"}


@dataclasses.dataclass(frozen=True)
class RoleSpec:
    """One declared role on a function or class."""

    role: str
    kind: str = ""
    requires_accounting: bool = True
    justification: str = ""


@dataclasses.dataclass
class TaintModel:
    """Everything the engine knows about sources/sanitizers/sinks.

    Keys of ``functions`` are fully qualified dotted names
    (``repro.network.messaging.Channel.send``); ``source_attributes``
    maps a bare attribute name to its human description and applies to
    any ``<expr>.<name>`` read in the analyzed program.
    """

    functions: Dict[str, Tuple[RoleSpec, ...]] = dataclasses.field(default_factory=dict)
    source_attributes: Dict[str, str] = dataclasses.field(default_factory=dict)
    carriers: Set[str] = dataclasses.field(default_factory=set)

    def add_function_role(self, qualname: str, spec: RoleSpec) -> None:
        self.functions[qualname] = self.functions.get(qualname, ()) + (spec,)

    def role(self, qualname: Optional[str], role: str) -> Optional[RoleSpec]:
        """The ``role`` spec declared on ``qualname``, if any."""
        if qualname is None:
            return None
        for spec in self.functions.get(qualname, ()):
            if spec.role == role:
                return spec
        return None

    def merge(self, other: "TaintModel") -> None:
        for qualname, specs in other.functions.items():
            self.functions[qualname] = self.functions.get(qualname, ()) + specs
        self.source_attributes.update(other.source_attributes)
        self.carriers |= other.carriers


def _decorator_role(node: ast.expr) -> Optional[Tuple[str, Mapping[str, ast.expr], Tuple[ast.expr, ...]]]:
    """Match one decorator expression against the ``taint.<role>`` idiom.

    Returns ``(role, keyword_args, positional_args)`` for both call
    forms (``@taint.sink("wire")``) and bare forms (``@taint.booking``).
    """
    call_args: Tuple[ast.expr, ...] = ()
    call_kwargs: Dict[str, ast.expr] = {}
    target = node
    if isinstance(node, ast.Call):
        target = node.func
        call_args = tuple(node.args)
        call_kwargs = {kw.arg: kw.value for kw in node.keywords if kw.arg}
    if not isinstance(target, ast.Attribute) or target.attr not in _ROLE_NAMES:
        return None
    base = target.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    if base_name not in _NAMESPACES:
        return None
    return target.attr, call_kwargs, call_args


def _literal_str(node: Optional[ast.expr], default: str = "") -> str:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return default


def _literal_bool(node: Optional[ast.expr], default: bool) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, bool):
        return node.value
    return default


def _spec_from(role: str, kwargs: Mapping[str, ast.expr], args: Tuple[ast.expr, ...]) -> RoleSpec:
    first = args[0] if args else None
    if role == "source":
        return RoleSpec(role=role, kind=_literal_str(kwargs.get("kind", first), "raw-demand"))
    if role == "sink":
        return RoleSpec(role=role, kind=_literal_str(kwargs.get("kind", first), "sink"))
    if role == "sanitizer":
        return RoleSpec(
            role=role,
            requires_accounting=_literal_bool(kwargs.get("requires_accounting"), True),
        )
    if role == "declassifier":
        return RoleSpec(
            role=role,
            justification=_literal_str(kwargs.get("justification", first)),
        )
    return RoleSpec(role=role)


def _is_source_attribute_call(node: ast.Call) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute) or func.attr != "source_attribute":
        return False
    base = func.value
    base_name = base.id if isinstance(base, ast.Name) else (
        base.attr if isinstance(base, ast.Attribute) else None
    )
    return base_name in _NAMESPACES


def extract_declarations(
    module_name: str, tree: ast.Module, *, into: Optional[TaintModel] = None
) -> TaintModel:
    """Collect every taint declaration in one module's AST.

    ``module_name`` prefixes the qualified names (``pkg.mod.Class.fn``).
    Only module- and class-level defs are considered — the declaration
    idiom never nests deeper.
    """
    model = into if into is not None else TaintModel()

    def visit_def(
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef], prefix: str
    ) -> None:
        qualname = f"{prefix}.{node.name}" if prefix else node.name
        for decorator in node.decorator_list:
            matched = _decorator_role(decorator)
            if matched is None:
                continue
            role, kwargs, args = matched
            model.add_function_role(qualname, _spec_from(role, kwargs, args))
            if role == "carrier":
                model.carriers.add(qualname)

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_def(node, module_name)
        elif isinstance(node, ast.ClassDef):
            visit_def(node, module_name)  # class-level roles (carrier)
            class_prefix = f"{module_name}.{node.name}" if module_name else node.name
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit_def(child, class_prefix)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            call = node.value
            if _is_source_attribute_call(call) and call.args:
                name = _literal_str(call.args[0])
                if name:
                    description = _literal_str(
                        call.args[1] if len(call.args) > 1 else None
                    )
                    model.source_attributes[name] = description
    return model


def build_model(modules: Iterable[Tuple[str, ast.Module]]) -> TaintModel:
    """Union of the declarations found across ``(name, tree)`` modules."""
    model = TaintModel()
    for name, tree in modules:
        extract_declarations(name, tree, into=model)
    return model
