"""Tests for the price/slack extensions of the per-SBS subproblem and
the distributed price-coordination machinery."""

import numpy as np
import pytest

from repro.core.distributed import (
    BaseStationAgent,
    DistributedConfig,
    DistributedOptimizer,
    solve_distributed,
)
from repro.core.subproblem import solve_subproblem
from repro.exceptions import ValidationError
from repro.network.messaging import Channel
from repro.privacy.mechanism import LPPMConfig


class TestSubproblemPrices:
    def test_zero_prices_match_default(self, tiny_problem):
        aggregate = np.zeros((3, 4))
        plain = solve_subproblem(tiny_problem, 0, aggregate)
        priced = solve_subproblem(
            tiny_problem, 0, aggregate, prices=np.zeros((3, 4))
        )
        assert priced.cost == pytest.approx(plain.cost)
        np.testing.assert_allclose(priced.routing, plain.routing)

    def test_huge_prices_suppress_routing(self, tiny_problem):
        aggregate = np.zeros((3, 4))
        result = solve_subproblem(
            tiny_problem, 0, aggregate, prices=np.full((3, 4), 1e9)
        )
        assert np.all(result.routing == 0.0)

    def test_selective_price_shifts_allocation(self, tiny_problem):
        """Pricing group 1 pushes SBS 0's bandwidth towards group 0."""
        aggregate = np.zeros((3, 4))
        prices = np.zeros((3, 4))
        prices[1, :] = 1e9
        result = solve_subproblem(tiny_problem, 0, aggregate, prices=prices)
        assert result.routing[1].sum() == 0.0
        assert result.routing[0].sum() > 0.0

    def test_cap_slack_loosens(self, tiny_problem):
        aggregate = np.ones((3, 4))  # everything served by others
        no_slack = solve_subproblem(tiny_problem, 0, aggregate)
        slack = solve_subproblem(tiny_problem, 0, aggregate, cap_slack=0.3)
        assert np.all(no_slack.routing == 0.0)
        assert slack.routing.max() <= 0.3 + 1e-9
        assert slack.routing.sum() > 0.0

    def test_cap_slack_never_exceeds_one(self, tiny_problem):
        aggregate = np.zeros((3, 4))
        result = solve_subproblem(tiny_problem, 0, aggregate, cap_slack=0.9)
        assert result.routing.max() <= 1.0 + 1e-9

    def test_negative_slack_rejected(self, tiny_problem):
        with pytest.raises(ValidationError):
            solve_subproblem(tiny_problem, 0, np.zeros((3, 4)), cap_slack=-0.1)

    def test_bad_price_shape_rejected(self, tiny_problem):
        with pytest.raises(ValidationError):
            solve_subproblem(tiny_problem, 0, np.zeros((3, 4)), prices=np.zeros((2, 2)))


class TestPriceUpdates:
    def test_prices_rise_on_overservice(self, tiny_problem):
        channel = Channel()
        bs = BaseStationAgent(tiny_problem, channel, with_prices=True)
        bs.reports[0, 1, 0] = 0.8
        bs.reports[1, 1, 0] = 0.8  # pair (1, 0) over-served by 0.6
        bs.update_prices(step=0.1)
        assert bs.prices[1, 0] > 0.0

    def test_prices_decay_on_underservice(self, tiny_problem):
        channel = Channel()
        bs = BaseStationAgent(tiny_problem, channel, with_prices=True)
        bs.prices[:] = 5.0
        bs.update_prices(step=0.1)
        assert np.all(bs.prices < 5.0)
        assert np.all(bs.prices >= 0.0)

    def test_prices_capped(self, tiny_problem):
        channel = Channel()
        bs = BaseStationAgent(tiny_problem, channel, with_prices=True)
        bs.reports[:, :, :] = 1.0
        for _ in range(100):
            bs.update_prices(step=10.0)
        margin = tiny_problem.savings_margin().max(axis=0)
        cap = 1.5 * margin[:, np.newaxis] * tiny_problem.demand
        assert np.all(bs.prices <= cap + 1e-9)

    def test_broadcast_payload_stacked(self, tiny_problem):
        optimizer = DistributedOptimizer(
            tiny_problem, DistributedConfig(coordination="prices", max_iterations=2)
        )
        payloads = []
        optimizer.channel.tap(lambda m: payloads.append(np.asarray(m.payload)))
        optimizer.run()
        broadcast_shapes = {p.shape for p in payloads if p.ndim == 3}
        assert broadcast_shapes == {(2, 3, 4)}


class TestPriceMode:
    def test_final_solution_feasible(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(coordination="prices", max_iterations=12, accuracy=1e-6),
        )
        assert result.solution.is_feasible(tiny_problem)

    def test_price_mode_at_least_as_good_as_caps(self, tiny_problem):
        caps = solve_distributed(
            tiny_problem, DistributedConfig(max_iterations=15, accuracy=1e-6)
        )
        prices = solve_distributed(
            tiny_problem,
            DistributedConfig(
                coordination="prices", max_iterations=15, accuracy=1e-6, restarts=2
            ),
            rng=0,
        )
        assert prices.cost <= caps.cost * 1.005

    def test_prices_with_privacy(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(coordination="prices", max_iterations=10, accuracy=1e-3),
            privacy=LPPMConfig(epsilon=0.5),
            rng=0,
        )
        assert result.accountant is not None
        assert result.solution.is_feasible(tiny_problem)


class TestRestarts:
    def test_restarts_never_worse(self, tiny_problem):
        single = solve_distributed(
            tiny_problem, DistributedConfig(max_iterations=10), rng=0
        )
        multi = solve_distributed(
            tiny_problem, DistributedConfig(max_iterations=10, restarts=4), rng=0
        )
        assert multi.cost <= single.cost + 1e-9

    def test_restarts_with_privacy_rejected(self, tiny_problem):
        with pytest.raises(ValidationError, match="restarts"):
            solve_distributed(
                tiny_problem,
                DistributedConfig(max_iterations=5, restarts=2),
                privacy=LPPMConfig(epsilon=0.1),
            )

    def test_bad_sweep_order_rejected(self, tiny_problem):
        with pytest.raises(ValidationError, match="permutation"):
            DistributedOptimizer(tiny_problem, sweep_order=[0, 0])
