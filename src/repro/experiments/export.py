"""Exporting sweep results for external plotting.

The benchmarks print ASCII tables/charts; anyone producing the paper's
actual figures will want the raw series in a standard format.  These
helpers write a :class:`~repro.experiments.runner.SweepResult` to CSV
(one row per sweep point, one column per scheme, plus per-scheme
standard deviations) or JSON (fully structured), and read the CSV back
for round-trip workflows.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Dict, List, Union

from ..analysis.taint import decl as taint
from ..exceptions import ValidationError
from .runner import SweepPoint, SweepResult

__all__ = ["sweep_to_csv", "sweep_to_json", "sweep_from_csv"]


@taint.sink("export")
def sweep_to_csv(result: SweepResult, path: Union[str, pathlib.Path]) -> None:
    """Write a sweep as CSV: ``x, <scheme>..., <scheme>_std...``."""
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = [result.x_label]
        header.extend(result.schemes)
        header.extend(f"{scheme}_std" for scheme in result.schemes)
        writer.writerow(header)
        for point in result.points:
            row: List[float] = [point.x]
            row.extend(point.costs[scheme] for scheme in result.schemes)
            row.extend(point.stds.get(scheme, 0.0) for scheme in result.schemes)
            writer.writerow(row)


@taint.sink("export")
def sweep_to_json(result: SweepResult, path: Union[str, pathlib.Path]) -> None:
    """Write a sweep as structured JSON."""
    payload = {
        "name": result.name,
        "x_label": result.x_label,
        "schemes": list(result.schemes),
        "points": [
            {
                "x": point.x,
                "costs": dict(point.costs),
                "stds": dict(point.stds),
            }
            for point in result.points
        ],
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2) + "\n")


def sweep_from_csv(
    path: Union[str, pathlib.Path],
    *,
    name: str = "imported",
) -> SweepResult:
    """Read a sweep back from the CSV written by :func:`sweep_to_csv`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ValidationError(f"sweep file not found: {path}")
    with path.open(newline="") as handle:
        rows = list(csv.reader(handle))
    if len(rows) < 2:
        raise ValidationError(f"sweep file has no data rows: {path}")
    header = rows[0]
    x_label = header[0]
    scheme_names = [name for name in header[1:] if not name.endswith("_std")]
    points = []
    for row in rows[1:]:
        if not row:
            continue
        try:
            values = [float(cell) for cell in row]
        except ValueError as exc:
            raise ValidationError(f"non-numeric cell in {path}: {exc}") from exc
        costs: Dict[str, float] = {}
        stds: Dict[str, float] = {}
        for index, scheme in enumerate(scheme_names):
            costs[scheme] = values[1 + index]
            std_column = 1 + len(scheme_names) + index
            stds[scheme] = values[std_column] if std_column < len(values) else 0.0
        points.append(SweepPoint(x=values[0], costs=costs, stds=stds))
    return SweepResult(
        name=name,
        x_label=x_label,
        points=tuple(points),
        schemes=tuple(scheme_names),
    )
