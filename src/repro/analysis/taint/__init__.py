"""``repro-taint``: whole-program privacy dataflow analysis.

Proves, statically and in CI, the paper's deployment contract: raw
per-SBS demand (``y_n``, demand matrices, request streams) never
crosses the SBS trust boundary — every egress carries only
DP-perturbed data whose epsilon is booked with the privacy accountant
(Theorem 4).  See :mod:`repro.analysis.taint.engine` for the analysis
itself, :mod:`repro.analysis.taint.decl` for the in-code declaration
decorators, and ``docs/static_analysis.md`` for the threat-model
mapping.

This ``__init__`` stays import-light on purpose: runtime modules pull
in :mod:`.decl` (stdlib-only, zero-cost decorators); the analyzer
machinery loads lazily via ``repro.analysis.taint.analyze_paths`` or
the ``repro-taint`` console script.
"""

from __future__ import annotations

from typing import Any

from . import decl

# repro-lint: disable=REPRO501 -- analyze_paths/TAINT_RULES resolve lazily via __getattr__ below
__all__ = ["decl", "analyze_paths", "TAINT_RULES"]


def __getattr__(name: str) -> Any:
    if name in ("analyze_paths", "TAINT_RULES"):
        from . import engine

        return getattr(engine, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
