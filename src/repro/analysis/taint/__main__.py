"""``python -m repro.analysis.taint`` runs the ``repro-taint`` CLI."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
