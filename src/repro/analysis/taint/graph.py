"""Whole-program index for the taint engine.

Builds, from a set of parsed files, everything interprocedural analysis
needs to resolve a call expression to a function definition:

* a module table (dotted name -> parsed AST + symbol tables);
* per-module import maps, with relative imports resolved against the
  module's package and ``from X import Y`` chains followed through
  re-exporting ``__init__`` modules (so ``obs.emit`` lands on
  ``repro.obs.recorder.emit``);
* per-class method tables, base-class links, and attribute types
  inferred from ``__init__`` — both annotated parameters stored on
  ``self`` (``self._channel = channel`` with ``channel: Channel``) and
  direct constructions (``self.mailbox = _Mailbox()``).

Resolution is purely syntactic and deterministic; anything it cannot
pin down stays unresolved and the engine falls back to conservative
propagation.
"""

from __future__ import annotations

import ast
import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProgramGraph"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclasses.dataclass
class FunctionInfo:
    """One analyzable function/method definition."""

    qualname: str          # pkg.mod.Class.fn or pkg.mod.fn
    module: str            # pkg.mod
    node: FunctionNode
    display_path: str
    class_name: Optional[str] = None   # owning class qualname, if a method

    @property
    def params(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclasses.dataclass
class ClassInfo:
    """One class: methods, bases (as written), inferred attribute types."""

    qualname: str
    module: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    base_exprs: List[ast.expr] = dataclasses.field(default_factory=list)
    attr_types: Dict[str, str] = dataclasses.field(default_factory=dict)  # attr -> class qualname
    # attr -> element class qualname for container-typed attributes
    # (``self.sbss: List[SBSAgent]`` -> agents pulled out of the list
    # keep their type for method dispatch)
    attr_elem_types: Dict[str, str] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module and its top-level symbol tables."""

    name: str
    path: Path
    display_path: str
    tree: ast.Module
    functions: Dict[str, FunctionInfo] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    # local binding -> dotted target: "Channel" -> "repro.network.messaging.Channel",
    # "obs" -> "repro.obs", "np" -> "numpy"
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    is_package: bool = False


def _strip_annotation(node: Optional[ast.expr]) -> Optional[str]:
    """The class name inside an annotation, unwrapping Optional/quotes.

    ``Optional[LaplacePrivacyMechanism]`` -> ``LaplacePrivacyMechanism``;
    ``Union[int, Channel]`` and subscripted generics resolve to their
    single non-``None`` class-looking argument when unambiguous.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        base = _strip_annotation(node.value)
        if base in ("Optional", "Union"):
            inner = node.slice
            candidates = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
            names = []
            for candidate in candidates:
                if isinstance(candidate, ast.Constant) and candidate.value is None:
                    continue
                name = _strip_annotation(candidate)
                if name is not None:
                    names.append(name)
            if len(names) == 1:
                return names[0]
    return None


#: Generic container heads whose single element type is worth tracking.
_CONTAINER_HEADS = {
    "List",
    "list",
    "Sequence",
    "MutableSequence",
    "Iterable",
    "Iterator",
    "Set",
    "set",
    "FrozenSet",
    "frozenset",
    "Deque",
    "deque",
    "Tuple",
    "tuple",
}


def _strip_elem_annotation(node: Optional[ast.expr]) -> Optional[str]:
    """Element class name of a container annotation (``List[SBSAgent]``)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if not isinstance(node, ast.Subscript):
        return None
    head = _strip_annotation(node.value)
    if head not in _CONTAINER_HEADS:
        return None
    inner = node.slice
    if isinstance(inner, ast.Tuple):
        # Tuple[X, ...] homogeneous form only.
        elts = [e for e in inner.elts if not (isinstance(e, ast.Constant) and e.value is Ellipsis)]
        if len(elts) != 1:
            return None
        inner = elts[0]
    return _strip_annotation(inner)


class ProgramGraph:
    """Module/class/function index with cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}

    # -- construction --------------------------------------------------
    def add_module(
        self, name: str, path: Path, display_path: str, tree: ast.Module
    ) -> ModuleInfo:
        info = ModuleInfo(
            name=name,
            path=path,
            display_path=display_path,
            tree=tree,
            is_package=path.name == "__init__.py",
        )
        self.modules[name] = info
        self._index_imports(info)
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(info, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._add_class(info, node)
        return info

    def _add_function(
        self, module: ModuleInfo, node: FunctionNode, class_name: Optional[str]
    ) -> FunctionInfo:
        prefix = class_name if class_name else module.name
        qualname = f"{prefix}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            node=node,
            display_path=module.display_path,
            class_name=class_name,
        )
        self.functions[qualname] = info
        if class_name is None:
            module.functions[node.name] = info
        return info

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            node=node,
            base_exprs=list(node.bases),
        )
        for child in node.body:
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[child.name] = self._add_function(module, child, qualname)
        self.classes[qualname] = info
        module.classes[node.name] = info

    def _index_imports(self, module: ModuleInfo) -> None:
        package_parts = module.name.split(".")
        if not module.is_package:
            package_parts = package_parts[:-1]
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[bound] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    cut = len(package_parts) - (node.level - 1)
                    if cut < 0:
                        continue
                    base_parts = package_parts[:cut]
                    base = ".".join(base_parts)
                    if node.module:
                        base = f"{base}.{node.module}" if base else node.module
                else:
                    base = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    module.imports[bound] = f"{base}.{alias.name}" if base else alias.name

    def finalize(self) -> None:
        """Infer class attribute types; call after every module is added."""
        for info in self.classes.values():
            self._infer_attr_types(info)

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        init = cls.methods.get("__init__")
        if init is None:
            return
        node = init.node
        param_types: Dict[str, str] = {}
        param_elem_types: Dict[str, str] = {}
        for arg in list(node.args.posonlyargs) + list(node.args.args) + list(node.args.kwonlyargs):
            name = _strip_annotation(arg.annotation)
            if name is not None:
                resolved = self.resolve_name(cls.module, name)
                if isinstance(resolved, ClassInfo):
                    param_types[arg.arg] = resolved.qualname
            elem = _strip_elem_annotation(arg.annotation)
            if elem is not None:
                resolved = self.resolve_name(cls.module, elem)
                if isinstance(resolved, ClassInfo):
                    param_elem_types[arg.arg] = resolved.qualname
        for stmt in ast.walk(node):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
                if (
                    isinstance(stmt.target, ast.Attribute)
                    and isinstance(stmt.target.value, ast.Name)
                    and stmt.target.value.id == "self"
                ):
                    annotated = _strip_annotation(stmt.annotation)
                    if annotated is not None:
                        resolved = self.resolve_name(cls.module, annotated)
                        if isinstance(resolved, ClassInfo):
                            cls.attr_types[stmt.target.attr] = resolved.qualname
                    elem = _strip_elem_annotation(stmt.annotation)
                    if elem is not None:
                        resolved = self.resolve_name(cls.module, elem)
                        if isinstance(resolved, ClassInfo):
                            cls.attr_elem_types[stmt.target.attr] = resolved.qualname
            if value is None:
                continue
            inferred: Optional[str] = None
            inferred_elem: Optional[str] = None
            if isinstance(value, ast.Name):
                inferred = param_types.get(value.id)
                inferred_elem = param_elem_types.get(value.id)
            elif isinstance(value, ast.Call):
                resolved = self.resolve_expr(cls.module, value.func)
                if isinstance(resolved, ClassInfo):
                    inferred = resolved.qualname
            if inferred is None and inferred_elem is None:
                continue
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    if inferred is not None:
                        cls.attr_types.setdefault(target.attr, inferred)
                    if inferred_elem is not None:
                        cls.attr_elem_types.setdefault(target.attr, inferred_elem)

    # -- resolution ----------------------------------------------------
    def resolve_dotted(
        self, dotted: str, *, _depth: int = 0
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Resolve an absolute dotted name, following re-export chains."""
        if _depth > 8:
            return None
        if dotted in self.modules:
            return self.modules[dotted]
        if dotted in self.functions:
            return self.functions[dotted]
        if dotted in self.classes:
            return self.classes[dotted]
        if "." not in dotted:
            return None
        prefix, leaf = dotted.rsplit(".", 1)
        container = self.resolve_dotted(prefix, _depth=_depth + 1)
        if isinstance(container, ModuleInfo):
            if leaf in container.functions:
                return container.functions[leaf]
            if leaf in container.classes:
                return container.classes[leaf]
            if leaf in container.imports:
                return self.resolve_dotted(container.imports[leaf], _depth=_depth + 1)
            submodule = f"{container.name}.{leaf}"
            if submodule in self.modules:
                return self.modules[submodule]
        if isinstance(container, ClassInfo):
            return self.resolve_method(container, leaf)
        return None

    def resolve_name(
        self, module_name: str, name: str
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Resolve a bare name as seen from ``module_name``'s scope."""
        module = self.modules.get(module_name)
        if module is None:
            return None
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        if name in module.imports:
            return self.resolve_dotted(module.imports[name])
        return None

    def resolve_expr(
        self, module_name: str, node: ast.expr
    ) -> Optional[Union[FunctionInfo, ClassInfo, ModuleInfo]]:
        """Resolve ``Name``/``Attribute`` chains like ``obs.emit``."""
        if isinstance(node, ast.Name):
            return self.resolve_name(module_name, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve_expr(module_name, node.value)
            if isinstance(base, ModuleInfo):
                return self.resolve_dotted(f"{base.name}.{node.attr}")
            if isinstance(base, ClassInfo):
                return self.resolve_method(base, node.attr)
            return None
        return None

    def resolve_method(
        self, cls: ClassInfo, name: str, *, _depth: int = 0
    ) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls``, walking base classes (C3-free MRO)."""
        if _depth > 8:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base_expr in cls.base_exprs:
            resolved = self.resolve_expr(cls.module, base_expr)
            if isinstance(resolved, ClassInfo):
                found = self.resolve_method(resolved, name, _depth=_depth + 1)
                if found is not None:
                    return found
        return None

    def attr_type(self, class_qualname: Optional[str], attr: str) -> Optional[str]:
        """Inferred type (class qualname) of ``self.<attr>`` on a class."""
        seen = 0
        current = class_qualname
        while current is not None and seen < 8:
            cls = self.classes.get(current)
            if cls is None:
                return None
            if attr in cls.attr_types:
                return cls.attr_types[attr]
            parent: Optional[str] = None
            for base_expr in cls.base_exprs:
                resolved = self.resolve_expr(cls.module, base_expr)
                if isinstance(resolved, ClassInfo):
                    parent = resolved.qualname
                    break
            current = parent
            seen += 1
        return None

    def attr_elem_type(self, class_qualname: Optional[str], attr: str) -> Optional[str]:
        """Element type of a container-typed ``self.<attr>``, if inferred."""
        seen = 0
        current = class_qualname
        while current is not None and seen < 8:
            cls = self.classes.get(current)
            if cls is None:
                return None
            if attr in cls.attr_elem_types:
                return cls.attr_elem_types[attr]
            parent: Optional[str] = None
            for base_expr in cls.base_exprs:
                resolved = self.resolve_expr(cls.module, base_expr)
                if isinstance(resolved, ClassInfo):
                    parent = resolved.qualname
                    break
            current = parent
            seen += 1
        return None

    def param_type(self, func: FunctionInfo, param: str) -> Optional[str]:
        """Annotated class type of parameter ``param``, if resolvable."""
        args = func.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg != param:
                continue
            name = _strip_annotation(arg.annotation)
            if name is None:
                return None
            resolved = self.resolve_name(func.module, name)
            if isinstance(resolved, ClassInfo):
                return resolved.qualname
            return None
        return None

    def param_elem_type(self, func: FunctionInfo, param: str) -> Optional[str]:
        """Element type of a container-annotated parameter, if inferred."""
        args = func.node.args
        for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            if arg.arg != param:
                continue
            elem = _strip_elem_annotation(arg.annotation)
            if elem is None:
                return None
            resolved = self.resolve_name(func.module, elem)
            if isinstance(resolved, ClassInfo):
                return resolved.qualname
            return None
        return None

    def all_functions(self) -> List[FunctionInfo]:
        """Every indexed function, deterministically ordered."""
        return [self.functions[name] for name in sorted(self.functions)]
