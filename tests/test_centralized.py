"""Tests for the centralized reference solvers (LP relaxation, B&B)."""

import numpy as np
import pytest

from repro.core.centralized import solve_centralized, solve_exact, solve_lp_relaxation
from repro.core.solution import Solution

from conftest import random_problem


class TestLPRelaxation:
    def test_lower_bounds_w(self, tiny_problem):
        cost, _, _ = solve_lp_relaxation(tiny_problem)
        assert cost <= tiny_problem.max_cost() + 1e-9

    def test_relaxed_caching_in_box(self, tiny_problem):
        _, caching, routing = solve_lp_relaxation(tiny_problem)
        assert caching.min() >= -1e-9 and caching.max() <= 1.0 + 1e-9
        assert routing.min() >= -1e-9 and routing.max() <= 1.0 + 1e-9

    def test_backends_agree(self, tiny_problem):
        cost_simplex, _, _ = solve_lp_relaxation(tiny_problem, backend="simplex")
        cost_scipy, _, _ = solve_lp_relaxation(tiny_problem, backend="scipy")
        assert cost_simplex == pytest.approx(cost_scipy, rel=1e-8)


class TestCentralized:
    def test_solution_feasible(self, tiny_problem):
        result = solve_centralized(tiny_problem)
        assert result.solution.is_feasible(tiny_problem)

    def test_cost_between_bound_and_w(self, tiny_problem):
        result = solve_centralized(tiny_problem)
        assert result.lower_bound - 1e-9 <= result.cost <= tiny_problem.max_cost()

    def test_gap_nonnegative(self, rng):
        for _ in range(4):
            problem = random_problem(rng)
            result = solve_centralized(problem)
            assert result.integrality_gap >= 0.0
            assert result.solution.is_feasible(problem)

    def test_cost_consistent_with_solution(self, tiny_problem):
        result = solve_centralized(tiny_problem)
        assert result.cost == pytest.approx(result.solution.cost(tiny_problem), rel=1e-9)


class TestExact:
    def test_matches_centralized_when_relaxation_tight(self, tiny_problem):
        exact = solve_exact(tiny_problem)
        rounded = solve_centralized(tiny_problem)
        assert exact.cost <= rounded.cost + 1e-6

    def test_exact_solution_feasible(self, tiny_problem):
        exact = solve_exact(tiny_problem)
        assert exact.solution.is_feasible(tiny_problem)

    def test_exact_beats_all_manual_caches(self, single_sbs_problem):
        """Exhaustively verify exactness on the single-SBS instance."""
        import itertools

        from repro.core.routing import optimal_routing_for_cache

        exact = solve_exact(single_sbs_problem)
        best = np.inf
        for subset in itertools.chain.from_iterable(
            itertools.combinations(range(3), k) for k in range(2)
        ):
            caching = np.zeros((1, 3))
            caching[0, list(subset)] = 1.0
            routing = optimal_routing_for_cache(single_sbs_problem, caching)
            best = min(best, Solution(caching=caching, routing=routing).cost(single_sbs_problem))
        assert exact.cost == pytest.approx(best, rel=1e-6)

    def test_exact_random_instances(self, rng):
        for _ in range(3):
            problem = random_problem(rng, num_sbs=2, num_groups=3, num_files=4)
            exact = solve_exact(problem)
            relaxed, _, _ = solve_lp_relaxation(problem)
            assert exact.cost >= relaxed - 1e-6
            assert exact.solution.is_feasible(problem)
