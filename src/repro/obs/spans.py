"""Causal span layer: trace-contexts, hybrid logical clocks, no-op fast path.

Every unit of work in a traced run — run, epoch, iteration, phase,
per-SBS solve, upload attempt, aggregate, broadcast — can be bracketed
by a *span*.  A span carries:

* a deterministic span id ``node:counter`` drawn from a per-node
  :class:`SpanTracker` (per-node counters keep ids reproducible even
  when asyncio interleaves several clients in one process);
* a ``trace`` id (the originating tracker's node, adopted by remote
  parties from propagated trace-context so BS-side and SBS-side spans
  stitch into one tree);
* a ``parent`` span id, explicit (from a wire trace-context) or ambient
  (the tracker's stack of open spans);
* a hybrid logical clock interval ``ls``/``le``: the logical (Lamport)
  component always, merged across processes via
  :meth:`SpanTracker.observe_clock`; the physical component (``t0``/
  ``t1``/``seconds`` wall-clock fields) only when timings are enabled,
  so ``timings=False`` traces stay byte-identical per seed.

Spans are emitted as ``span`` events *at close*, through the module
recorder (:func:`repro.obs.recorder.emit`) or an explicit per-tracker
sink (the socket clients buffer into their ``ListRecorder`` and ship
events to the BS, which replays them into the authoritative trace).

The layer is strictly opt-in: unless the active recorder was installed
with ``spans=True`` (:func:`repro.obs.recorder.spans_enabled`),
:func:`span` returns a shared no-op object and trackers default to
:data:`NOOP_TRACKER`, keeping the disabled cost within the established
~ns emit budget (pinned by ``BENCH_spans.json``).

Wall-clock discipline: the *only* sanctioned wall-clock read in this
module is :func:`_wall_now`, which returns ``None`` unless its gate is
true — repro-lint rule REPRO104 enforces that span code never calls
``time.time``/``perf_counter`` anywhere else.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional

from . import recorder as _recorder
from .recorder import spans_enabled

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover
    _resource = None  # type: ignore[assignment]

__all__ = [
    "SpanTracker",
    "NOOP_TRACKER",
    "span",
    "spans_enabled",
    "resource_attrs",
    "SPAN_CATEGORIES",
]

#: Critical-path attribution buckets a span may declare.
SPAN_CATEGORIES = (
    "run",
    "epoch",
    "iteration",
    "phase",
    "solve",
    "network",
    "retry",
    "straggler",
    "aggregate",
    "broadcast",
    "other",
)


def _wall_now(enabled: bool) -> Optional[float]:
    """Timings-gated wall-clock read — the only sanctioned call site.

    Returns ``time.perf_counter()`` when ``enabled`` is true, ``None``
    otherwise, so byte-determinism is a pure function of the gate.
    """
    return time.perf_counter() if enabled else None


class Span:
    """One unit of work; assigns ids on enter, emits one event on exit.

    Use as a context manager, or via explicit :meth:`start` /
    :meth:`finish` when the close point does not nest lexically (the
    run root must close *before* the ``run_end`` emit so its event
    stays inside the run bracket).
    """

    __slots__ = (
        "_tracker",
        "_name",
        "_category",
        "_parent",
        "_attrs",
        "_owns_ambient",
        "span_id",
        "ls",
        "t0",
    )

    def __init__(
        self,
        tracker: Optional["SpanTracker"],
        name: str,
        *,
        parent: Optional[str] = None,
        category: str = "other",
        **attrs: Any,
    ) -> None:
        self._tracker = tracker
        self._name = name
        self._category = category
        self._parent = parent
        self._attrs: Dict[str, Any] = dict(attrs)
        self._owns_ambient = False
        self.span_id: Optional[str] = None
        self.ls = 0
        self.t0: Optional[float] = None

    def annotate(self, *, category: Optional[str] = None, **attrs: Any) -> None:
        """Add/override attributes (and optionally the category) pre-close."""
        if category is not None:
            self._category = category
        self._attrs.update(attrs)

    def context(self) -> Optional[Dict[str, Any]]:
        """Wire trace-context of this (open) span, for propagation."""
        if self._tracker is None or self.span_id is None:
            return None
        return {
            "trace": self._tracker.trace_id(),
            "span": self.span_id,
            "clock": self._tracker.clock(),
        }

    def start(self) -> "Span":
        """Assign ids/clock and push onto the owning tracker's stack."""
        global _ambient
        tracker = self._tracker
        if tracker is None:
            if _ambient is None:
                _ambient = SpanTracker("local")
                self._owns_ambient = True
            tracker = _ambient
            self._tracker = tracker
        if self._parent is None and tracker._stack:
            self._parent = tracker._stack[-1].span_id
        self.span_id = tracker._next_id()
        self.ls = tracker._tick()
        self.t0 = _wall_now(tracker.timings_on())
        tracker._stack.append(self)
        return self

    def finish(self) -> None:
        """Pop from the tracker stack and emit the ``span`` event."""
        global _ambient
        tracker = self._tracker
        if tracker is None or self.span_id is None:
            return
        if tracker._stack and tracker._stack[-1] is self:
            tracker._stack.pop()
        else:  # out-of-order close: remove wherever it sits
            try:
                tracker._stack.remove(self)
            except ValueError:
                pass
        le = tracker._tick()
        event: Dict[str, Any] = {
            "name": self._name,
            "span": self.span_id,
            "node": tracker.node,
            "trace": tracker.trace_id(),
            "parent": self._parent,
            "category": self._category,
            "ls": self.ls,
            "le": le,
        }
        event.update(self._attrs)
        t1 = _wall_now(tracker.timings_on())
        if self.t0 is not None and t1 is not None:
            event["t0"] = self.t0
            event["t1"] = t1
            event["seconds"] = t1 - self.t0
        tracker._record(event)
        if self._owns_ambient:
            _ambient = None
            self._owns_ambient = False

    def __enter__(self) -> "Span":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.finish()


class _NoopSpan:
    """Shared do-nothing span returned whenever spans are disabled."""

    __slots__ = ()
    span_id: Optional[str] = None

    def start(self) -> "_NoopSpan":
        return self

    def finish(self) -> None:
        return None

    def annotate(self, *, category: Optional[str] = None, **attrs: Any) -> None:
        return None

    def context(self) -> Optional[Dict[str, Any]]:
        return None

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


class SpanTracker:
    """Per-node span factory: deterministic ids + a Lamport clock.

    ``node`` names the emitting party (``"bs"``, ``"sbs-2"``,
    ``"local"``); span ids are ``node:counter`` so concurrent parties
    never race a shared counter.  ``sink`` routes emitted events to an
    explicit recorder (socket clients buffer locally) instead of the
    module-global :func:`repro.obs.recorder.emit`.  ``timings`` may be
    ``True``/``False`` to pin wall-clock capture (clients inherit the
    session flag) or ``None`` to follow the active recorder's setting.
    """

    __slots__ = ("node", "trace", "_counter", "_clock", "_stack", "_sink", "_timings")

    def __init__(
        self,
        node: str,
        *,
        trace: Optional[str] = None,
        sink: Optional[_recorder.TraceRecorder] = None,
        timings: Optional[bool] = None,
    ) -> None:
        self.node = node
        self.trace = trace
        self._counter = 0
        self._clock = 0
        self._stack: List[Span] = []
        self._sink = sink
        self._timings = timings

    def trace_id(self) -> str:
        """The trace id spans of this tracker stamp (node until adopted)."""
        return self.trace if self.trace is not None else self.node

    def clock(self) -> int:
        """Current Lamport clock value."""
        return self._clock

    def timings_on(self) -> bool:
        """Whether spans of this tracker capture wall-clock fields."""
        if self._timings is None:
            return _recorder.timings_enabled()
        return self._timings

    def wall(self) -> Optional[float]:
        """Timings-gated wall-clock read in this tracker's regime."""
        return _wall_now(self.timings_on())

    def observe_clock(self, remote: int) -> None:
        """Merge a remote logical clock (Lamport receive rule)."""
        if remote > self._clock:
            self._clock = int(remote)

    def adopt(self, ctx: Optional[Mapping[str, Any]]) -> Optional[str]:
        """Join a propagated trace-context; returns the parent span id."""
        if not ctx:
            return None
        trace = ctx.get("trace")
        if self.trace is None and trace is not None:
            self.trace = str(trace)
        try:
            self.observe_clock(int(ctx.get("clock", 0)))
        except (TypeError, ValueError):
            pass
        parent = ctx.get("span")
        return None if parent is None else str(parent)

    def span(
        self,
        name: str,
        *,
        parent: Optional[str] = None,
        category: str = "other",
        **attrs: Any,
    ) -> Span:
        """A new (unstarted) span bound to this tracker."""
        return Span(self, name, parent=parent, category=category, **attrs)

    def current_context(self) -> Optional[Dict[str, Any]]:
        """Trace-context of the innermost open span, or ``None``."""
        if not self._stack:
            return None
        return self._stack[-1].context()

    def _next_id(self) -> str:
        span_id = f"{self.node}:{self._counter}"
        self._counter += 1
        return span_id

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    def _record(self, event: Dict[str, Any]) -> None:
        if self._sink is not None:
            payload = dict(event)
            payload["type"] = "span"
            self._sink.record(payload)
        else:
            _recorder.emit("span", **event)


class _NoopTracker:
    """Tracker stand-in when spans are disabled: every call is inert."""

    __slots__ = ()
    node = "noop"
    trace: Optional[str] = None

    def trace_id(self) -> str:
        return self.node

    def clock(self) -> int:
        return 0

    def timings_on(self) -> bool:
        return False

    def wall(self) -> Optional[float]:
        return None

    def observe_clock(self, remote: int) -> None:
        return None

    def adopt(self, ctx: Optional[Mapping[str, Any]]) -> Optional[str]:
        return None

    def span(self, name: str, **kwargs: Any) -> _NoopSpan:
        return _NOOP

    def current_context(self) -> Optional[Dict[str, Any]]:
        return None


#: Shared inert tracker; runtime parties hold this when spans are off.
NOOP_TRACKER = _NoopTracker()

# Ambient tracker for in-process solver nesting (online run -> slot ->
# inner distributed run).  Installed by the first ambient root span and
# released when that span finishes; never used across awaits.
_ambient: Optional[SpanTracker] = None


def span(
    name: str,
    *,
    parent: Optional[str] = None,
    category: str = "other",
    **attrs: Any,
) -> Any:
    """Open an ambient span, or the shared no-op when spans are off.

    In-process solvers call this without managing trackers: the first
    ambient span creates a ``local`` tracker, nested calls parent onto
    the innermost open span, and the tracker is torn down when the
    owning root finishes.
    """
    if not spans_enabled():
        return _NOOP
    return Span(None, name, parent=parent, category=category, **attrs)


def resource_attrs(timings: bool) -> Dict[str, Any]:
    """Resource-profile attributes for a root span.

    Deterministic parts (perf *counters*: kernel invocation counts,
    sparse allocation counters) are attached whenever a
    :mod:`repro.perf` registry is collecting; volatile parts (peak RSS,
    per-kernel cumulative seconds) only when ``timings`` is true, so
    they are masked from byte-determinism exactly like ``seconds``.
    """
    from .. import perf

    attrs: Dict[str, Any] = {}
    registry = perf.active_registry()
    if registry is not None:
        snapshot = registry.snapshot()
        if snapshot["counters"]:
            attrs["perf_counters"] = snapshot["counters"]
        if timings and snapshot["timings_s"]:
            attrs["perf_timings_s"] = snapshot["timings_s"]
    if timings and _resource is not None:
        attrs["rss_peak_kb"] = int(
            _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
        )
    return attrs
