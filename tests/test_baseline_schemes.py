"""Tests for the baseline schemes: LRFU simulation, greedy, routing rules."""

import numpy as np
import pytest

from repro.baselines.greedy import popularity_caching, solve_greedy
from repro.baselines.lrfu_scheme import LRFUSchemeConfig, solve_lrfu
from repro.baselines.routing_policies import greedy_routing, proportional_routing
from repro.core.distributed import solve_distributed
from repro.exceptions import ValidationError


class TestGreedyRouting:
    def test_respects_bandwidth(self, tiny_problem):
        caching = np.ones((2, 4))
        routing = greedy_routing(tiny_problem, caching)
        usage = np.einsum("nuf,uf->n", routing, tiny_problem.demand)
        assert np.all(usage <= tiny_problem.bandwidth + 1e-9)

    def test_respects_unit_demand(self, tiny_problem):
        caching = np.ones((2, 4))
        routing = greedy_routing(tiny_problem, caching)
        served = np.einsum("nuf,nu->uf", routing, tiny_problem.connectivity)
        assert served.max() <= 1.0 + 1e-9

    def test_only_cached_files_served(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[:, 0] = 1.0
        routing = greedy_routing(tiny_problem, caching)
        assert np.all(routing[:, :, 1:] == 0.0)

    def test_empty_cache_serves_nothing(self, tiny_problem):
        routing = greedy_routing(tiny_problem, np.zeros((2, 4)))
        assert np.all(routing == 0.0)


class TestProportionalRouting:
    def test_feasible(self, tiny_problem):
        caching = np.ones((2, 4))
        routing = proportional_routing(tiny_problem, caching)
        usage = np.einsum("nuf,uf->n", routing, tiny_problem.demand)
        assert np.all(usage <= tiny_problem.bandwidth + 1e-9)
        served = np.einsum("nuf,nu->uf", routing, tiny_problem.connectivity)
        assert served.max() <= 1.0 + 1e-9

    def test_even_split_on_shared_group(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[:, 3] = 1.0  # small demand, no bandwidth pressure
        routing = proportional_routing(tiny_problem, caching)
        # group 1 is reachable from both SBSs -> each serves half
        assert routing[0, 1, 3] == pytest.approx(0.5)
        assert routing[1, 1, 3] == pytest.approx(0.5)


class TestPopularityCaching:
    def test_capacity_respected(self, tiny_problem):
        caching = popularity_caching(tiny_problem)
        assert np.all(caching.sum(axis=1) <= tiny_problem.cache_capacity)

    def test_most_valuable_files_cached(self, tiny_problem):
        caching = popularity_caching(tiny_problem)
        # Files 0 and 1 dominate the demand at both SBSs.
        assert caching[0, 0] == 1.0 and caching[0, 1] == 1.0

    def test_solve_greedy_feasible(self, tiny_problem):
        solution = solve_greedy(tiny_problem)
        assert solution.is_feasible(tiny_problem)

    def test_optimal_routing_variant_weakly_better(self, tiny_problem):
        greedy = solve_greedy(tiny_problem, routing="greedy")
        optimal = solve_greedy(tiny_problem, routing="optimal")
        assert optimal.cost(tiny_problem) <= greedy.cost(tiny_problem) + 1e-9

    def test_unknown_routing(self, tiny_problem):
        with pytest.raises(ValidationError):
            solve_greedy(tiny_problem, routing="psychic")


class TestLRFUScheme:
    def test_result_structure(self, tiny_problem):
        result = solve_lrfu(tiny_problem, rng=0)
        assert result.requests_processed > 0
        assert len(result.cache_stats) == tiny_problem.num_sbs
        assert result.edge_served_volume >= 0.0

    def test_bandwidth_and_unit_demand_feasible(self, tiny_problem):
        result = solve_lrfu(tiny_problem, rng=0)
        report = result.solution.check_feasibility(tiny_problem)
        families = set(report.by_constraint())
        # Cache rotation can leave y <= x stale (documented); the physical
        # constraints must hold.
        assert "bandwidth(3)" not in families
        assert "unit_demand(4)" not in families
        assert "locality" not in families

    def test_cost_between_optimum_and_w(self, tiny_problem):
        result = solve_lrfu(tiny_problem, rng=0)
        optimum = solve_distributed(tiny_problem)
        cost = result.cost(tiny_problem)
        assert optimum.cost <= cost + 1e-6
        assert cost <= tiny_problem.max_cost() + 1e-9

    def test_deterministic_stream_reproducible(self, tiny_problem):
        config = LRFUSchemeConfig(stream="deterministic", steering="load_balance")
        a = solve_lrfu(tiny_problem, config, rng=0)
        b = solve_lrfu(tiny_problem, config, rng=1)
        assert a.cost(tiny_problem) == pytest.approx(b.cost(tiny_problem))

    def test_poisson_stream_seeded(self, tiny_problem):
        config = LRFUSchemeConfig(stream="poisson")
        a = solve_lrfu(tiny_problem, config, rng=3)
        b = solve_lrfu(tiny_problem, config, rng=3)
        assert a.cost(tiny_problem) == pytest.approx(b.cost(tiny_problem))

    def test_zero_demand(self, tiny_problem):
        import dataclasses

        empty = dataclasses.replace(tiny_problem, demand=np.zeros((3, 4)))
        result = solve_lrfu(empty, rng=0)
        assert result.requests_processed == 0
        assert result.cost(empty) == 0.0

    def test_warmup_improves_or_equal(self, tiny_problem):
        cold = solve_lrfu(tiny_problem, LRFUSchemeConfig(warmup_passes=0), rng=0)
        warm = solve_lrfu(tiny_problem, LRFUSchemeConfig(warmup_passes=2), rng=0)
        # Warmed caches should not serve (meaningfully) less.
        assert warm.cost(tiny_problem) <= cold.cost(tiny_problem) * 1.05

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            LRFUSchemeConfig(horizon=0.0)
        with pytest.raises(ValidationError):
            LRFUSchemeConfig(stream="telepathy")
        with pytest.raises(ValidationError):
            LRFUSchemeConfig(steering="clairvoyant")
        with pytest.raises(ValidationError):
            LRFUSchemeConfig(warmup_passes=-1)
