"""Algorithm 1 — the distributed updating algorithm (Section III).

The algorithm is a Gauss-Seidel sweep over SBSs.  In phase ``n`` of
iteration ``tau``, SBS ``n``:

1. receives the BS's broadcast of the *aggregated* routing policy and
   subtracts its own last report to obtain ``y_{-n}`` (Eq. 25) — it never
   sees another SBS's individual policy;
2. solves its subproblem ``P_n`` (Lagrangian decomposition, see
   :mod:`repro.core.subproblem`);
3. optionally perturbs the resulting routing block with LPPM
   (Section IV) and uploads it to the BS (line 4 of Algorithm 1);
4. the BS folds the upload into its aggregate and broadcasts it (line 5).

All exchanges go through :class:`repro.network.messaging.Channel`, so an
eavesdropper tap observes exactly what the paper's attacker observes —
the broadcast aggregates — and nothing more.

Termination follows Algorithm 1: stop when the relative cost change
drops to the accuracy level ``gamma`` or after ``T`` iterations.  With
LPPM the evaluated cost uses the *reported* (perturbed) policies, since
those are the fractions actually served from the edge; the residual is
picked up by the BS.

An asynchronous (Jacobi-style) variant with stale aggregates — the
paper's stated future work — is provided via ``mode="jacobi"``.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .._validation import check_in_interval, check_positive_int, rng_from
from ..exceptions import ProtocolError, ValidationError
from ..network.messaging import Channel, Message, MessageKind
from ..privacy.accountant import PrivacyAccountant
from ..privacy.factory import MechanismConfig, build_mechanism
from ..privacy.mechanism import LaplacePrivacyMechanism, LPPMConfig
from .convergence import CostHistory, PhaseRecord
from .cost import total_cost
from .problem import ProblemInstance
from .solution import Solution
from .subproblem import SubproblemConfig, solve_subproblem

__all__ = [
    "DistributedConfig",
    "DistributedResult",
    "BaseStationAgent",
    "SBSAgent",
    "DistributedOptimizer",
    "solve_distributed",
]


@dataclasses.dataclass(frozen=True)
class DistributedConfig:
    """Run parameters of Algorithm 1.

    Attributes
    ----------
    accuracy:
        The accuracy level ``gamma``: stop once the relative cost change
        between iterations is at most this.
    max_iterations:
        The iteration cap ``T``.
    subproblem:
        Configuration forwarded to every per-SBS solve.
    mode:
        ``"gauss-seidel"`` (the paper's synchronized algorithm) or
        ``"jacobi"`` (asynchronous-style: every SBS best-responds to the
        previous iteration's aggregate simultaneously; convergence is not
        guaranteed by Theorem 2 — damping mitigates oscillation).
    damping:
        Jacobi damping factor in ``(0, 1]``; the uploaded policy is
        ``damping * new + (1 - damping) * previous``.  Ignored in
        Gauss-Seidel mode.
    coordination:
        ``"caps"`` — the paper-literal scheme: each SBS caps its routing
        at the residual ``1 - y_{-n}``.  Block-coordinate descent over
        the *coupled* constraint (4) can then stall at a non-optimal
        equilibrium (Theorem 2's cited result assumes a product
        constraint set).  ``"prices"`` — an enhancement that dualizes
        constraint (4) at the BS: the broadcast carries per-pair
        congestion prices updated by subgradient on the over-service
        ``sum_n y - 1``, SBSs see them as per-unit charges, and residual
        caps are loosened by a decaying slack so contested pairs can be
        transiently over-served while prices equilibrate.  A final
        zero-slack sweep restores feasibility.  DESIGN.md discusses the
        trade-off; the evaluation defaults to the paper-literal mode.
    price_eta0 / price_alpha:
        Price subgradient step schedule ``eta0 / (1 + alpha * tau)``
        (prices mode only).
    slack0 / slack_decay:
        Initial cap slack and its per-iteration geometric decay
        (prices mode only).
    """

    accuracy: float = 1e-4
    max_iterations: int = 30
    subproblem: SubproblemConfig = dataclasses.field(default_factory=SubproblemConfig)
    mode: str = "gauss-seidel"
    damping: float = 1.0
    coordination: str = "caps"
    price_eta0: float = 0.5
    price_alpha: float = 0.5
    slack0: float = 0.5
    slack_decay: float = 0.65
    restarts: int = 1

    def __post_init__(self) -> None:
        if self.accuracy < 0:
            raise ValidationError(f"accuracy must be nonnegative, got {self.accuracy}")
        check_positive_int(self.max_iterations, "max_iterations")
        if self.mode not in ("gauss-seidel", "jacobi"):
            raise ValidationError(f"mode must be 'gauss-seidel' or 'jacobi', got {self.mode!r}")
        check_in_interval(self.damping, "damping", low=0.0, high=1.0, low_open=True)
        if self.coordination not in ("caps", "prices"):
            raise ValidationError(
                f"coordination must be 'caps' or 'prices', got {self.coordination!r}"
            )
        if self.price_eta0 <= 0 or self.price_alpha < 0:
            raise ValidationError("price_eta0 must be > 0 and price_alpha >= 0")
        if not 0.0 <= self.slack0 <= 1.0 or not 0.0 < self.slack_decay < 1.0:
            raise ValidationError("slack0 must lie in [0, 1] and slack_decay in (0, 1)")
        check_positive_int(self.restarts, "restarts")


@dataclasses.dataclass
class DistributedResult:
    """Outcome of a distributed run.

    With LPPM active, two policies coexist (Section IV-B):

    * the **reported** (perturbed) routing ``y_hat = y - r`` the BS
      aggregates — this is what each SBS commits to serving, so the
      system cost (``cost``, evaluated at ``solution.routing``) is
      ``f(y_hat)``, the quantity Theorems 3 and 5 analyse; the deflated
      portion of every request falls back to the BS;
    * the **pre-noise** routing each SBS computed
      (``unperturbed_routing`` / ``unperturbed_cost``) — what the run
      would have served without the mechanism.  The attacker never sees
      it; :mod:`repro.attacks` measures how well it can be estimated.

    Without privacy the two coincide.
    """

    solution: Solution
    cost: float
    iterations: int
    converged: bool
    history: CostHistory
    channel: Channel
    unperturbed_routing: Optional[np.ndarray] = None
    unperturbed_cost: Optional[float] = None
    accountant: Optional[PrivacyAccountant] = None

    @property
    def total_epsilon(self) -> Optional[float]:
        """Per-SBS privacy budget spent (basic composition), if private.

        Each SBS's own data is protected by its own releases, so the
        per-party total is the meaningful guarantee; all SBSs spend the
        same budget in a synchronized run.
        """
        if self.accountant is None:
            return None
        parties = {release.party for release in self.accountant.releases}
        if not parties:
            return 0.0
        return max(self.accountant.total_epsilon_basic(party) for party in parties)


class BaseStationAgent:
    """The BS of Algorithm 1: aggregates uploads, broadcasts the total.

    In ``"prices"`` coordination the BS also maintains per-pair
    congestion prices and piggybacks them on the broadcast: the payload
    is then ``(2, U, F)`` — aggregate stacked on prices — instead of the
    plain ``(U, F)`` aggregate.
    """

    def __init__(
        self, problem: ProblemInstance, channel: Channel, *, with_prices: bool = False
    ) -> None:
        self.name = "bs"
        self._problem = problem
        self._channel = channel
        channel.register(self.name)
        self._reports = np.zeros(problem.shape)
        self._with_prices = with_prices
        self.prices = np.zeros((problem.num_groups, problem.num_files))
        # Price update scale: one unit of over-service on pair (u, f) is
        # worth about the pair's best margin times its demand.
        best_margin = problem.savings_margin().max(axis=0)  # (U,)
        self._price_scale = best_margin[:, np.newaxis] * problem.demand
        self._price_cap = 1.5 * self._price_scale

    @property
    def reports(self) -> np.ndarray:
        """Latest (possibly perturbed) routing block reported by each SBS."""
        return self._reports

    def aggregate(self) -> np.ndarray:
        """The aggregated load ``sum_n y[n]`` the BS broadcasts."""
        return self._reports.sum(axis=0)

    def update_prices(self, step: float) -> None:
        """Projected subgradient step on the dual of constraint (4).

        ``pi <- [pi + step * scale * (sum_n y - 1)]^+``, capped so a
        price can never exceed 1.5x the pair's best possible margin
        (beyond which no SBS would serve it anyway).
        """
        violation = self.aggregate() - 1.0
        self.prices = np.clip(
            self.prices + step * self._price_scale * violation, 0.0, self._price_cap
        )

    def broadcast_aggregate(self, iteration: int, phase: int) -> None:
        """Line 5 of Algorithm 1: broadcast the aggregated load."""
        payload = self.aggregate()
        if self._with_prices:
            payload = np.stack([payload, self.prices])
        self._channel.send(
            Message(
                kind=MessageKind.AGGREGATE_BROADCAST,
                sender=self.name,
                recipient="*",
                payload=payload,
                iteration=iteration,
                phase=phase,
            )
        )

    def collect_upload(self, expected_sbs: int) -> np.ndarray:
        """Receive one policy upload and fold it into the aggregate."""
        message = self._channel.receive(self.name)
        if message.kind is not MessageKind.POLICY_UPLOAD:
            raise ProtocolError(f"BS expected a policy upload, got {message.kind}")
        if message.sender != f"sbs-{expected_sbs}":
            raise ProtocolError(
                f"BS expected an upload from sbs-{expected_sbs}, got {message.sender}"
            )
        block = np.asarray(message.payload)
        if block.shape != (self._problem.num_groups, self._problem.num_files):
            raise ProtocolError(f"upload has wrong shape {block.shape}")
        self._reports[expected_sbs] = block
        return block

    def system_cost(self) -> float:
        """Network cost evaluated at the reported policies."""
        return total_cost(self._problem, self._reports)


class SBSAgent:
    """One SBS: solves ``P_n`` locally, optionally applies LPPM."""

    def __init__(
        self,
        problem: ProblemInstance,
        index: int,
        channel: Channel,
        *,
        subproblem_config: Optional[SubproblemConfig] = None,
        mechanism: Optional[LaplacePrivacyMechanism] = None,
        accountant: Optional[PrivacyAccountant] = None,
    ) -> None:
        problem._check_sbs(index)
        self.index = index
        self.name = f"sbs-{index}"
        self._problem = problem
        self._channel = channel
        channel.register(self.name)
        self._config = subproblem_config or SubproblemConfig()
        self._mechanism = mechanism
        self._accountant = accountant
        self.caching = np.zeros(problem.num_files)
        self.true_routing = np.zeros((problem.num_groups, problem.num_files))
        self.last_report = np.zeros((problem.num_groups, problem.num_files))
        self._last_multipliers = None  # warm start across iterations
        self._has_solved = False

    @property
    def is_private(self) -> bool:
        return self._mechanism is not None

    def read_latest_aggregate(self) -> tuple:
        """Drain the mailbox; return the freshest ``(aggregate, prices)``.

        Plain broadcasts carry a ``(U, F)`` aggregate (prices ``None``);
        price-coordination broadcasts carry a stacked ``(2, U, F)``
        payload.
        """
        messages = self._channel.drain(self.name)
        aggregates = [
            message.payload
            for message in messages
            if message.kind is MessageKind.AGGREGATE_BROADCAST
        ]
        if not aggregates:
            raise ProtocolError(f"{self.name} has no aggregate broadcast to read")
        payload = np.asarray(aggregates[-1])
        if payload.ndim == 3:
            return payload[0], payload[1]
        return payload, None

    def run_phase(self, iteration: int, phase: int, *, cap_slack: float = 0.0) -> float:
        """Execute one phase: read aggregate, solve ``P_n``, upload.

        Returns the L1 mass of privacy noise injected (zero when not
        private).
        """
        aggregate, prices = self.read_latest_aggregate()
        aggregate_others = np.clip(aggregate - self.last_report, 0.0, None)
        result = solve_subproblem(
            self._problem,
            self.index,
            aggregate_others,
            self._config,
            prices=prices,
            cap_slack=cap_slack,
            initial_multipliers=self._last_multipliers,
            candidate_caching=self.caching if self._has_solved else None,
        )
        self._last_multipliers = result.multipliers
        self._has_solved = True
        self.caching = result.caching
        self.true_routing = result.routing
        report = result.routing
        noise_l1 = 0.0
        if self._mechanism is not None:
            report = self._mechanism.perturb(report)
            noise_l1 = float(np.abs(result.routing - report).sum())
            if self._accountant is not None:
                self._accountant.record(
                    party=self.name,
                    epsilon=self._mechanism.config.epsilon,
                    label=f"iter-{iteration}-phase-{phase}",
                )
        self.last_report = report
        self._channel.send(
            Message(
                kind=MessageKind.POLICY_UPLOAD,
                sender=self.name,
                recipient="bs",
                payload=report,
                iteration=iteration,
                phase=phase,
            )
        )
        return noise_l1


class DistributedOptimizer:
    """Orchestrates Algorithm 1 over the message-passing substrate."""

    def __init__(
        self,
        problem: ProblemInstance,
        config: Optional[DistributedConfig] = None,
        *,
        privacy: Optional[MechanismConfig] = None,
        rng: Union[int, np.random.Generator, None] = None,
        sweep_order: Optional[Sequence[int]] = None,
    ) -> None:
        self.problem = problem
        self.config = config or DistributedConfig()
        if sweep_order is None:
            sweep_order = list(range(problem.num_sbs))
        order = [int(i) for i in sweep_order]
        if sorted(order) != list(range(problem.num_sbs)):
            raise ValidationError(
                f"sweep_order must be a permutation of 0..{problem.num_sbs - 1}"
            )
        self._order = order
        self.channel = Channel()
        self.base_station = BaseStationAgent(
            problem, self.channel, with_prices=self.config.coordination == "prices"
        )
        self.accountant = PrivacyAccountant() if privacy is not None else None
        generator = rng_from(rng)
        self.sbss: List[SBSAgent] = []
        for n in problem.sbs_indices():
            mechanism = None
            if privacy is not None:
                # Independent noise stream per SBS, all derived from one seed.
                child_seed = int(generator.integers(np.iinfo(np.int64).max))
                mechanism = build_mechanism(privacy, rng=child_seed)
            self.sbss.append(
                SBSAgent(
                    problem,
                    n,
                    self.channel,
                    subproblem_config=self.config.subproblem,
                    mechanism=mechanism,
                    accountant=self.accountant,
                )
            )

    # ------------------------------------------------------------------
    def run(self) -> DistributedResult:
        """Execute Algorithm 1 until the accuracy level or iteration cap."""
        problem, config = self.problem, self.config
        history = CostHistory(initial_cost=problem.max_cost())
        previous_cost = history.initial_cost
        converged = False
        iterations = 0

        # Initial broadcast: the all-zero aggregate every SBS starts from
        # (the paper's y_{-n}(tau=0) = 0 initialisation).
        self.base_station.broadcast_aggregate(iteration=-1, phase=-1)

        with_prices = config.coordination == "prices"
        for iteration in range(config.max_iterations):
            slack = config.slack0 * config.slack_decay**iteration if with_prices else 0.0
            price_step = (
                config.price_eta0 / (1.0 + config.price_alpha * iteration)
                if with_prices
                else None
            )
            if config.mode == "gauss-seidel":
                self._gauss_seidel_sweep(iteration, history, slack, price_step)
            else:
                self._jacobi_sweep(iteration, history, slack, price_step)
            cost = self.base_station.system_cost()
            history.close_iteration(cost)
            iterations = iteration + 1
            denominator = abs(cost) if cost != 0 else 1.0
            # In prices mode the early sweeps run with a loose slack and
            # immature prices; a stable cost there says nothing about
            # optimality, so hold off the convergence test until the
            # slack has essentially vanished.
            slack_settled = (not with_prices) or slack < 0.02
            if slack_settled and abs(previous_cost - cost) / denominator <= config.accuracy:
                converged = True
                break
            previous_cost = cost

        if with_prices:
            # Feasibility restoration: one zero-slack sweep with frozen
            # prices removes any residual over-service left by the
            # transient slack.
            self._gauss_seidel_sweep(iterations, history, slack=0.0, price_step=None)
            history.close_iteration(self.base_station.system_cost())

        unperturbed = np.stack([agent.true_routing for agent in self.sbss])
        solution = Solution(
            caching=np.stack([agent.caching for agent in self.sbss]),
            routing=self.base_station.reports.copy(),
        )
        return DistributedResult(
            solution=solution,
            cost=history.final_cost,
            iterations=iterations,
            converged=converged,
            history=history,
            channel=self.channel,
            unperturbed_routing=unperturbed,
            unperturbed_cost=total_cost(problem, unperturbed),
            accountant=self.accountant,
        )

    # ------------------------------------------------------------------
    def _gauss_seidel_sweep(
        self,
        iteration: int,
        history: CostHistory,
        slack: float = 0.0,
        price_step: Optional[float] = None,
    ) -> None:
        """One iteration, following Algorithm 1's lines 2-5 exactly.

        For each phase: the active SBS reads the latest aggregate
        broadcast, solves ``P_n`` and uploads (line 4); the BS folds the
        upload in, updates congestion prices when price coordination is
        on, and broadcasts to everyone (line 5).  Every upload is
        therefore sandwiched between two broadcasts — exactly the
        information an eavesdropper on the broadcast channel gets to
        see.
        """
        for phase, index in enumerate(self._order):
            agent = self.sbss[index]
            noise_l1 = agent.run_phase(iteration, phase, cap_slack=slack)
            self.base_station.collect_upload(agent.index)
            if price_step is not None:
                self.base_station.update_prices(price_step)
            self.base_station.broadcast_aggregate(iteration, phase)
            history.record_phase(
                PhaseRecord(
                    iteration=iteration,
                    phase=phase,
                    sbs=agent.index,
                    cost=self.base_station.system_cost(),
                    noise_l1=noise_l1,
                )
            )

    def _jacobi_sweep(
        self,
        iteration: int,
        history: CostHistory,
        slack: float = 0.0,
        price_step: Optional[float] = None,
    ) -> None:
        """All SBSs best-respond to the same (stale) aggregate, with damping."""
        uploads: Dict[int, float] = {}
        for index in self._order:
            agent = self.sbss[index]
            noise_l1 = agent.run_phase(iteration, phase=0, cap_slack=slack)
            uploads[agent.index] = noise_l1
        for phase, agent in enumerate(self.sbss):
            previous = self.base_station.reports[agent.index].copy()
            block = self.base_station.collect_upload(agent.index)
            if self.config.damping < 1.0:
                damped = self.config.damping * block + (1.0 - self.config.damping) * previous
                self.base_station.reports[agent.index] = damped
                agent.last_report = damped
            history.record_phase(
                PhaseRecord(
                    iteration=iteration,
                    phase=phase,
                    sbs=agent.index,
                    cost=self.base_station.system_cost(),
                    noise_l1=uploads[agent.index],
                )
            )
        if price_step is not None:
            self.base_station.update_prices(price_step)
        self.base_station.broadcast_aggregate(iteration, phase=len(self.sbss))


def solve_distributed(
    problem: ProblemInstance,
    config: Optional[DistributedConfig] = None,
    *,
    privacy: Optional[MechanismConfig] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> DistributedResult:
    """Run Algorithm 1, optionally best-of-``restarts`` sweep orders.

    With ``config.restarts > 1`` the run is repeated under different
    Gauss-Seidel sweep orders (identity first, then random
    permutations) and the cheapest final solution is kept — a legitimate
    distributed protocol, since the BS already evaluates the reported
    system cost.  Restarts are refused with privacy enabled: every extra
    run would spend additional budget, which should be an explicit
    decision, not a solver default.
    """
    config = config or DistributedConfig()
    if config.restarts == 1:
        return DistributedOptimizer(problem, config, privacy=privacy, rng=rng).run()
    if privacy is not None:
        raise ValidationError(
            "restarts > 1 with LPPM would multiply the privacy budget; "
            "run the restarts explicitly if that is intended"
        )
    generator = rng_from(rng)
    orders = [list(range(problem.num_sbs))]
    for _ in range(config.restarts - 1):
        orders.append(list(generator.permutation(problem.num_sbs)))
    best: Optional[DistributedResult] = None
    for order in orders:
        result = DistributedOptimizer(
            problem, config, privacy=None, rng=generator, sweep_order=order
        ).run()
        if best is None or result.cost < best.cost:
            best = result
    assert best is not None
    return best
