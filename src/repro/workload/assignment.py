"""Distributing content requests over MU groups.

Section V-A: "We further distributed requests randomly among MUs."
:func:`assign_requests` implements that multinomial split — each video's
demand volume is dealt uniformly at random across the MU groups — plus a
locality-weighted variant where groups have heterogeneous activity
levels (bigger crowds request more), useful for ablations.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from .._validation import as_float_array, rng_from
from ..exceptions import ValidationError

__all__ = ["assign_requests", "assign_requests_weighted"]


def assign_requests(
    demand_per_file: np.ndarray,
    num_groups: int,
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Split each file's demand uniformly at random over MU groups.

    ``demand_per_file`` may be fractional (scaled traces); fractional
    volumes are split with a Dirichlet(1) draw, which is the continuous
    analogue of the uniform multinomial and keeps column sums exact.
    Returns the ``(U, F)`` demand matrix ``Lambda``.
    """
    return assign_requests_weighted(demand_per_file, np.ones(num_groups), rng=rng)


def assign_requests_weighted(
    demand_per_file: np.ndarray,
    group_weights: np.ndarray,
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Split demand over groups proportionally-at-random to ``group_weights``.

    Each file's volume is distributed with a Dirichlet draw whose
    concentration is the weight vector, so in expectation group ``u``
    receives ``weight[u] / sum(weights)`` of every file's demand while
    individual draws stay realistically lumpy.
    """
    volumes = as_float_array(demand_per_file, "demand_per_file", ndim=1, nonnegative=True)
    weights = as_float_array(group_weights, "group_weights", ndim=1, nonnegative=True)
    if weights.size == 0:
        raise ValidationError("group_weights must be nonempty")
    if weights.sum() <= 0:
        raise ValidationError("group_weights must contain at least one positive entry")
    generator = rng_from(rng)
    num_groups, num_files = weights.size, volumes.size
    demand = np.zeros((num_groups, num_files))
    concentration = np.where(weights > 0, weights, 1e-12)
    for f in range(num_files):
        if volumes[f] <= 0:
            continue
        shares = generator.dirichlet(concentration)
        demand[:, f] = volumes[f] * shares
    # Zero-weight groups must receive exactly nothing.
    demand[weights == 0, :] = 0.0
    return demand
