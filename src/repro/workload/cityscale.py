"""City-scale sparse instance synthesis.

The paper's evaluation runs on a handful of SBSs and MU groups; a city
deployment has hundreds of SBSs, thousands of MU groups and a content
catalogue in the ``10^5``–``10^6`` range.  At that scale the dense
``(U, F)`` demand and ``(N, U)`` connectivity matrices are pointless to
materialize — a group hears the few SBSs within radio range and
requests a few hundred contents — so this module builds a
:class:`~repro.core.sparse.SparseProblemInstance` directly in CSR form:

* SBSs and MU groups are placed uniformly on the unit square and each
  group reaches its ``reach`` nearest SBSs (proximity connectivity, the
  sparse twin of :func:`repro.network.topology.connectivity_by_proximity`);
* each group samples a personal content subset from a *global* Zipf
  popularity (heavy head shared across groups, long tail mostly
  disjoint), and its request volume is apportioned over that subset
  with another Zipf shape through
  :func:`repro.workload.zipf.zipf_counts` ``(total=...)`` — so every
  group's demand row sums exactly to its drawn volume;
* link costs grow with distance inside ``[1, 5]`` and BS costs are
  uniform in ``[100, 150]``, the paper's Section V ranges.

Nothing dense-shaped is ever allocated except the ``(U, N)`` distance
matrix used for the nearest-SBS query, which is linear in the topology,
not in the catalogue.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .._validation import check_positive_int, rng_from
from ..core.sparse import SparseProblemInstance
from ..exceptions import ValidationError
from .zipf import zipf_counts, zipf_popularity

__all__ = ["generate_city_instance"]


def generate_city_instance(
    num_sbs: int,
    num_groups: int,
    num_files: int,
    *,
    reach: int = 3,
    files_per_group: int = 64,
    popularity_exponent: float = 0.8,
    demand_exponent: float = 0.8,
    volume_range: tuple = (20.0, 200.0),
    cache_slots: float = 8.0,
    bandwidth: Optional[float] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> SparseProblemInstance:
    """Generate a seeded city-scale sparse instance.

    Parameters
    ----------
    num_sbs / num_groups / num_files:
        Topology and catalogue sizes ``N`` / ``U`` / ``F``.
    reach:
        SBSs within radio range of each group (its CSR reachability row
        length); capped at ``N``.
    files_per_group:
        Target demand-support size per group.  Sampling from the global
        popularity is with replacement and deduplicated, so heavy-head
        collisions can leave a row slightly smaller — sparsity is a
        property of the workload, not a padded constant.
    popularity_exponent:
        Zipf exponent of the *global* content popularity the supports
        are sampled from (head-biased sampling makes popular contents
        shared across many groups, the regime where edge caching pays).
    demand_exponent:
        Zipf exponent of each group's per-content request volumes.
    volume_range:
        Per-group total request volume, uniform in ``[lo, hi]``; the
        group's integer row sum is exact (largest-remainder rounding).
    cache_slots:
        Cache capacity ``C_n`` for every SBS.
    bandwidth:
        Bandwidth ``B_n`` for every SBS; ``None`` sizes it so the edge
        can serve roughly a quarter of the total demand
        (``0.25 * total_volume / N``) — enough contention that routing
        decisions matter.
    rng:
        Seed or generator; the instance is a pure function of it.
    """
    check_positive_int(num_sbs, "num_sbs")
    check_positive_int(num_groups, "num_groups")
    check_positive_int(num_files, "num_files")
    check_positive_int(files_per_group, "files_per_group")
    if reach < 1:
        raise ValidationError(f"reach must be at least 1, got {reach}")
    lo, hi = float(volume_range[0]), float(volume_range[1])
    if not 0 < lo <= hi:
        raise ValidationError(f"volume_range must satisfy 0 < lo <= hi, got {volume_range}")
    generator = rng_from(rng)
    reach = min(int(reach), num_sbs)
    support_target = min(int(files_per_group), num_files)

    # --- topology: nearest-SBS reachability with distance-scaled costs
    sbs_xy = generator.uniform(0.0, 1.0, size=(num_sbs, 2))
    group_xy = generator.uniform(0.0, 1.0, size=(num_groups, 2))
    distances = np.linalg.norm(group_xy[:, np.newaxis, :] - sbs_xy[np.newaxis, :, :], axis=2)
    if reach < num_sbs:
        nearest = np.argpartition(distances, reach - 1, axis=1)[:, :reach]
    else:
        nearest = np.broadcast_to(np.arange(num_sbs), (num_groups, num_sbs)).copy()
    nearest = np.sort(nearest, axis=1)  # CSR rows must be ascending
    reach_indptr = np.arange(num_groups + 1, dtype=np.int64) * reach
    reach_sbs = nearest.ravel()
    link_distance = np.take_along_axis(distances, nearest, axis=1).ravel()
    # d[n, u] in [1, 5], growing with distance (sqrt(2) is the square's diameter).
    link_cost = 1.0 + 4.0 * link_distance / np.sqrt(2.0)

    # --- demand: head-biased supports, exact per-group volumes
    popularity = zipf_popularity(num_files, popularity_exponent)
    cdf = np.cumsum(popularity)
    cdf[-1] = 1.0
    volumes = generator.uniform(lo, hi, size=num_groups)
    rows_files = []
    rows_values = []
    counts_per_group = np.zeros(num_groups, dtype=np.int64)
    for group in range(num_groups):
        draws = np.searchsorted(cdf, generator.random(2 * support_target))
        support = np.unique(draws)[:support_target]
        total = max(int(round(volumes[group])), support.size)
        # Most-popular-first volumes land on the lowest file ids — the
        # global head — because ``support`` is ascending and the global
        # popularity is rank-ordered.
        values = zipf_counts(support.size, exponent=demand_exponent, total=total)
        rows_files.append(support)
        rows_values.append(values)
        counts_per_group[group] = support.size
    demand_files = np.concatenate(rows_files)
    demand_values = np.concatenate(rows_values)
    demand_indptr = np.concatenate(([0], np.cumsum(counts_per_group)))

    total_volume = float(demand_values.sum())
    if bandwidth is None:
        bandwidth = 0.25 * total_volume / num_sbs
    return SparseProblemInstance(
        num_files=num_files,
        demand_indptr=demand_indptr,
        demand_files=demand_files,
        demand_values=demand_values,
        reach_indptr=reach_indptr,
        reach_sbs=reach_sbs,
        link_cost=link_cost,
        cache_capacity=np.full(num_sbs, float(cache_slots)),
        bandwidth=np.full(num_sbs, float(bandwidth)),
        bs_cost=generator.uniform(100.0, 150.0, size=num_groups),
    )
