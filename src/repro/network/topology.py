"""Topology generation: placements, connectivity and transmission costs.

The evaluation (Section V) fixes three SBSs, varies the total number of
SBS-MU links (Fig. 5) and the number of MU groups (Fig. 4), sets the
SBS transmission parameter ``d[n, u] = 1`` and draws the BS parameter
``d_hat[u]`` uniformly from ``[100, 150]``.  This module provides:

* :func:`place_network` — random geometric placement of SBSs and MU
  groups in a square area, BS at the centre;
* :func:`connectivity_by_proximity` — exactly ``num_links`` links chosen
  closest-first, modelling that nearby MU-SBS pairs get links;
* :func:`random_connectivity` — exactly ``num_links`` links chosen
  uniformly at random (the paper only states the total link count);
* :func:`transmission_costs` — the paper's cost parameters, either the
  constant/uniform defaults or distance-proportional variants;
* :func:`to_bipartite_graph` — a :mod:`networkx` view for analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int, rng_from
from ..exceptions import ValidationError
from .entities import BaseStation, MobileUserGroup, Position, SmallBaseStation

__all__ = [
    "Placement",
    "place_network",
    "connectivity_by_proximity",
    "random_connectivity",
    "transmission_costs",
    "to_bipartite_graph",
]


@dataclasses.dataclass(frozen=True)
class Placement:
    """Positions of every entity in the deployment area."""

    base_station: BaseStation
    sbss: Tuple[SmallBaseStation, ...]
    groups: Tuple[MobileUserGroup, ...]
    area_side: float

    @property
    def num_sbs(self) -> int:
        return len(self.sbss)

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def distances(self) -> np.ndarray:
        """``(N, U)`` SBS-to-group distance matrix."""
        return np.array(
            [
                [sbs.position.distance_to(group.position) for group in self.groups]
                for sbs in self.sbss
            ]
        )

    def bs_distances(self) -> np.ndarray:
        """``(U,)`` BS-to-group distances."""
        return np.array(
            [self.base_station.position.distance_to(group.position) for group in self.groups]
        )


def place_network(
    num_sbs: int,
    num_groups: int,
    *,
    area_side: float = 10.0,
    cache_capacity: int = 10,
    bandwidth: float = 1000.0,
    operators: Optional[Sequence[str]] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> Placement:
    """Place the BS at the centre, SBSs and MU groups uniformly at random.

    ``operators`` optionally assigns one operator name per SBS (defaults
    to distinct names, matching the multi-company scenario motivating the
    privacy mechanism).
    """
    check_positive_int(num_sbs, "num_sbs")
    check_positive_int(num_groups, "num_groups")
    if area_side <= 0:
        raise ValidationError(f"area_side must be positive, got {area_side}")
    generator = rng_from(rng)
    if operators is None:
        operators = [f"operator-{n}" for n in range(num_sbs)]
    elif len(operators) != num_sbs:
        raise ValidationError(f"need {num_sbs} operator names, got {len(operators)}")
    centre = Position(area_side / 2.0, area_side / 2.0)
    base_station = BaseStation(position=centre)
    sbss = tuple(
        SmallBaseStation(
            index=n,
            position=Position(*generator.uniform(0.0, area_side, size=2)),
            cache_capacity=cache_capacity,
            bandwidth=bandwidth,
            operator=operators[n],
        )
        for n in range(num_sbs)
    )
    groups = tuple(
        MobileUserGroup(index=u, position=Position(*generator.uniform(0.0, area_side, size=2)))
        for u in range(num_groups)
    )
    return Placement(base_station=base_station, sbss=sbss, groups=groups, area_side=area_side)


def _check_link_budget(num_sbs: int, num_groups: int, num_links: int) -> None:
    check_positive_int(num_sbs, "num_sbs")
    check_positive_int(num_groups, "num_groups")
    if num_links < 0 or num_links > num_sbs * num_groups:
        raise ValidationError(
            f"num_links must lie in [0, {num_sbs * num_groups}], got {num_links}"
        )


def connectivity_by_proximity(placement: Placement, num_links: int) -> np.ndarray:
    """Connectivity with exactly ``num_links`` links, closest pairs first."""
    _check_link_budget(placement.num_sbs, placement.num_groups, num_links)
    distances = placement.distances()
    flat_order = np.argsort(distances, axis=None, kind="stable")
    connectivity = np.zeros_like(distances)
    chosen = np.unravel_index(flat_order[:num_links], distances.shape)
    connectivity[chosen] = 1.0
    return connectivity


def random_connectivity(
    num_sbs: int,
    num_groups: int,
    num_links: int,
    *,
    rng: Union[int, np.random.Generator, None] = None,
    spread_over_groups: bool = True,
) -> np.ndarray:
    """Connectivity with exactly ``num_links`` uniformly random links.

    With ``spread_over_groups=True`` (default) links are dealt to MU
    groups round-robin in random order before going random, so coverage
    is as even as the budget allows — matching the evaluation's regime
    where 40 links cover 30 MUs.
    """
    _check_link_budget(num_sbs, num_groups, num_links)
    generator = rng_from(rng)
    connectivity = np.zeros((num_sbs, num_groups))
    remaining = num_links
    if spread_over_groups:
        group_order = generator.permutation(num_groups)
        for u in group_order:
            if remaining == 0:
                break
            n = int(generator.integers(num_sbs))
            connectivity[n, u] = 1.0
            remaining -= 1
    if remaining > 0:
        free = np.argwhere(connectivity == 0)
        picks = generator.choice(free.shape[0], size=remaining, replace=False)
        for row in free[picks]:
            connectivity[row[0], row[1]] = 1.0
    return connectivity


def transmission_costs(
    placement: Placement,
    *,
    sbs_cost: float = 1.0,
    bs_cost_range: Tuple[float, float] = (100.0, 150.0),
    distance_weighted: bool = False,
    rng: Union[int, np.random.Generator, None] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(d[n, u], d_hat[u])`` per Section V's setup.

    Defaults to the paper's choice: ``d[n, u] = 1`` and ``d_hat[u]``
    uniform in ``[100, 150]``.  ``distance_weighted=True`` instead scales
    both by normalized distance (the paper motivates ``d`` as a
    distance/power weight), keeping ``d_hat`` dominant.
    """
    low, high = bs_cost_range
    if low < 0 or high < low:
        raise ValidationError(f"invalid bs_cost_range {bs_cost_range}")
    generator = rng_from(rng)
    num_sbs, num_groups = placement.num_sbs, placement.num_groups
    bs_costs = generator.uniform(low, high, size=num_groups)
    if not distance_weighted:
        return np.full((num_sbs, num_groups), float(sbs_cost)), bs_costs
    distances = placement.distances()
    reference = max(float(distances.max()), 1e-12)
    sbs_costs = sbs_cost * (0.5 + 0.5 * distances / reference)
    return sbs_costs, bs_costs


def to_bipartite_graph(connectivity: np.ndarray):
    """A :mod:`networkx` bipartite graph view of the connectivity matrix.

    SBS nodes are ``("sbs", n)``, MU nodes ``("mu", u)``.  Useful for
    structural analysis (coverage, components) in notebooks and tests.
    """
    import networkx as nx

    connectivity = np.asarray(connectivity)
    if connectivity.ndim != 2:
        raise ValidationError("connectivity must be a 2-D matrix")
    graph = nx.Graph()
    num_sbs, num_groups = connectivity.shape
    graph.add_nodes_from((("sbs", n) for n in range(num_sbs)), bipartite=0)
    graph.add_nodes_from((("mu", u) for u in range(num_groups)), bipartite=1)
    for n, u in np.argwhere(connectivity > 0):
        graph.add_edge(("sbs", int(n)), ("mu", int(u)))
    return graph
