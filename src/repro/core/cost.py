"""Serving-cost functions from Section II-B of the paper.

The total serving cost decomposes as ``f(y) = f1(y) + f2(y)``:

* ``f1`` (Eq. 5): cost of SBSs serving MU requests directly,
  ``sum_{n,u,f} d[n,u] * y[n,u,f] * l[n,u] * lambda[u,f]`` — linear,
  non-decreasing in ``y``.
* ``f2`` (Eq. 6): cost of the BS serving the residual demand,
  ``sum_u d_hat[u] * sum_f (1 - sum_n y[n,u,f] * l[n,u]) * lambda[u,f]``
  — linear, non-increasing in ``y``.

The paper allows any convex non-decreasing ``f1`` / convex non-increasing
``f2``; the linear forms above are the representative instantiation used
throughout the evaluation.  :class:`LinearCostModel` implements them, and
the :class:`CostModel` protocol lets tests plug in alternative convex
models.

When the LPPM privacy mechanism over-serves a request the extra packets
are discarded (Section IV-B), so the residual demand is floored at zero;
``clip_residual`` controls this.
"""

from __future__ import annotations

import dataclasses
from typing import Protocol, runtime_checkable

import numpy as np

from ..analysis.taint import decl as taint
from ..exceptions import ValidationError
from .problem import ProblemInstance

__all__ = [
    "CostModel",
    "LinearCostModel",
    "sbs_serving_cost",
    "bs_serving_cost",
    "total_cost",
    "total_cost_sparse",
    "served_fraction",
    "residual_fraction",
]


@runtime_checkable
class CostModel(Protocol):
    """Protocol for serving-cost models over routing policies."""

    def sbs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Edge-serving cost ``f1(y)``."""

    def bs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Backhaul-serving cost ``f2(y)``."""

    def total(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Total cost ``f(y) = f1(y) + f2(y)``."""


def _check_routing_shape(problem: ProblemInstance, routing: np.ndarray) -> np.ndarray:
    routing = np.asarray(routing, dtype=np.float64)
    if routing.shape != problem.shape:
        raise ValidationError(
            f"routing must have shape {problem.shape} (N, U, F), got {routing.shape}"
        )
    return routing


def served_fraction(problem: ProblemInstance, routing: np.ndarray) -> np.ndarray:
    """``(U, F)`` total fraction of each request served by SBSs.

    This is ``sum_n y[n,u,f] * l[n,u]``; constraint (4) requires it to be
    at most one.
    """
    routing = _check_routing_shape(problem, routing)
    return np.einsum("nuf,nu->uf", routing, problem.connectivity)


def residual_fraction(
    problem: ProblemInstance, routing: np.ndarray, *, clip: bool = True
) -> np.ndarray:
    """``(U, F)`` fraction of each request left for the BS to serve.

    With ``clip=True`` (the default) over-served requests contribute zero
    residual, matching the paper's "extra video packet will be discarded"
    semantics for the privacy mechanism.
    """
    residual = 1.0 - served_fraction(problem, routing)
    if clip:
        residual = np.maximum(residual, 0.0)
    return residual


def sbs_serving_cost(problem: ProblemInstance, routing: np.ndarray) -> float:
    """Edge serving cost ``f1(y)`` of Eq. (5)."""
    routing = _check_routing_shape(problem, routing)
    weighted = problem.sbs_cost * problem.connectivity  # (N, U)
    per_pair = np.einsum("nuf,uf->nu", routing, problem.demand)
    return float(np.sum(weighted * per_pair))


def bs_serving_cost(
    problem: ProblemInstance, routing: np.ndarray, *, clip_residual: bool = True
) -> float:
    """Backhaul serving cost ``f2(y)`` of Eq. (6)."""
    residual = residual_fraction(problem, routing, clip=clip_residual)
    return float(np.sum(problem.bs_cost[:, np.newaxis] * residual * problem.demand))


@taint.declassifier("system-wide aggregate cost: the scalar the paper itself reports (Eq. 11), revealing no per-SBS demand")
def total_cost(
    problem: ProblemInstance, routing: np.ndarray, *, clip_residual: bool = True
) -> float:
    """Total serving cost ``f(y) = f1(y) + f2(y)`` of Eq. (7)."""
    return sbs_serving_cost(problem, routing) + bs_serving_cost(
        problem, routing, clip_residual=clip_residual
    )


def total_cost_sparse(problem, solution, *, clip_residual: bool = True) -> float:
    """Total serving cost of a sparse solution on a sparse instance.

    The compact twin of :func:`total_cost`: ``f1`` runs over each SBS's
    reachable demand pairs and ``f2`` over the demand nonzeros, so no
    ``(N, U, F)`` array is ever materialized.  Delegates to
    :func:`repro.core.sparse.sparse_total_cost` (imported lazily —
    ``core.sparse`` builds on this module).
    """
    from .sparse import sparse_total_cost

    return sparse_total_cost(problem, solution, clip_residual=clip_residual)


@dataclasses.dataclass(frozen=True)
class LinearCostModel:
    """The paper's representative linear cost model (Eqs. 5-6).

    Parameters
    ----------
    clip_residual:
        Floor the BS residual at zero (discard over-served packets).
        Disable only inside solvers that already enforce constraint (4),
        where the unclipped objective is linear and easier to reason
        about.
    """

    clip_residual: bool = True

    def sbs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Edge serving cost ``f1`` (Eq. 5)."""
        return sbs_serving_cost(problem, routing)

    def bs_cost(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Backhaul serving cost ``f2`` (Eq. 6)."""
        return bs_serving_cost(problem, routing, clip_residual=self.clip_residual)

    def total(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Total serving cost ``f = f1 + f2`` (Eq. 7)."""
        return total_cost(problem, routing, clip_residual=self.clip_residual)

    def savings(self, problem: ProblemInstance, routing: np.ndarray) -> float:
        """Cost saved relative to serving everything from the BS.

        Equals ``W - f(y)`` where ``W`` is :meth:`ProblemInstance.max_cost`.
        """
        return problem.max_cost() - self.total(problem, routing)
