"""Laplace and bounded-Laplace distributions (Section IV-B, Eq. 28).

The LPPM mechanism cannot use the standard Laplace distribution because
the routing policy lives in ``[0, 1]``: the disturbance ``r[n, u, f]``
must stay inside ``I = [0, delta * y[n, u, f]]``.  The paper therefore
uses the *bounded* Laplace distribution of Holohan et al. (2018), the
ordinary Laplace density restricted to an interval and renormalized:

``pdf(r) = (1 / alpha) * (1 / (2 beta)) * exp(-|r| / beta)`` for ``r`` in
``I`` and ``0`` elsewhere, where ``alpha(beta) = integral over I of the
unnormalized density``.

:class:`BoundedLaplace` implements the distribution on an arbitrary
interval ``[lower, upper]`` with closed-form cdf, inverse-cdf sampling
and moments, all vectorized over numpy arrays.  :class:`Laplace` is the
unbounded distribution, kept for baselines and tests.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Tuple, Union

import numpy as np

from .._validation import ArrayLike, rng_from, trapezoid
from ..exceptions import PrivacyError

__all__ = ["Laplace", "BoundedLaplace", "bounded_laplace_normalizer"]

#: Sample-shape argument accepted by the ``sample`` methods.
SampleShape = Optional[Union[int, Tuple[int, ...]]]


def bounded_laplace_normalizer(beta: float, lower: ArrayLike, upper: ArrayLike) -> np.ndarray:
    """The normalization constant ``alpha(beta)`` of Eq. 28.

    ``alpha = integral_{lower}^{upper} (1/(2 beta)) exp(-|r|/beta) dr``,
    computed in closed form; vectorized over ``lower``/``upper`` arrays.
    """
    if beta <= 0:
        raise PrivacyError(f"beta must be positive, got {beta}")
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    if np.any(upper < lower):
        raise PrivacyError("interval upper bounds must be >= lower bounds")

    def unnormalized_cdf(t: np.ndarray) -> np.ndarray:
        # CDF of the unnormalized density measured from -inf.
        t = np.asarray(t, dtype=np.float64)
        negative = 0.5 * np.exp(np.minimum(t, 0.0) / beta)
        positive = 1.0 - 0.5 * np.exp(-np.maximum(t, 0.0) / beta)
        return np.where(t < 0, negative, positive)

    return unnormalized_cdf(upper) - unnormalized_cdf(lower)


@dataclasses.dataclass(frozen=True)
class Laplace:
    """Standard zero-mean Laplace distribution with scale ``beta``."""

    beta: float

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise PrivacyError(f"beta must be positive, got {self.beta}")

    def pdf(self, r: ArrayLike) -> np.ndarray:
        """Laplace density ``exp(-|r|/beta) / (2 beta)``."""
        r = np.asarray(r, dtype=np.float64)
        return np.exp(-np.abs(r) / self.beta) / (2.0 * self.beta)

    def cdf(self, r: ArrayLike) -> np.ndarray:
        """Cumulative distribution function."""
        r = np.asarray(r, dtype=np.float64)
        return np.where(
            r < 0,
            0.5 * np.exp(r / self.beta),
            1.0 - 0.5 * np.exp(-r / self.beta),
        )

    def sample(
        self, size: SampleShape = None, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw samples from the distribution."""
        generator = rng_from(rng)
        return generator.laplace(loc=0.0, scale=self.beta, size=size)  # type: ignore

    def mean(self) -> float:
        """The distribution's mean (zero)."""
        return 0.0

    def variance(self) -> float:
        """The distribution's variance ``2 beta^2``."""
        return 2.0 * self.beta**2


class BoundedLaplace:
    """Laplace distribution truncated and renormalized to ``[lower, upper]``.

    ``lower`` and ``upper`` may be scalars or arrays (broadcast
    together); a zero-width interval yields the degenerate distribution
    at that point, which is what the mechanism needs when ``y = 0``
    (no routing means nothing to perturb).
    """

    def __init__(self, beta: float, lower: ArrayLike, upper: ArrayLike) -> None:
        if beta <= 0:
            raise PrivacyError(f"beta must be positive, got {beta}")
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        lower, upper = np.broadcast_arrays(lower, upper)
        if np.any(upper < lower):
            raise PrivacyError("interval upper bounds must be >= lower bounds")
        self._beta = float(beta)
        self._lower = lower.astype(np.float64, copy=True)
        self._upper = upper.astype(np.float64, copy=True)
        self._alpha = bounded_laplace_normalizer(beta, self._lower, self._upper)
        # Degenerate cells collapse to a point mass at ``lower``: either
        # the interval itself has zero width (the mechanism's ``y = 0``
        # cells, where ``I = [0, 0]``), or the normalizer underflowed to
        # zero because the interval sits so deep in the Laplace tail that
        # every double inside it rounds to density zero.  In that limit
        # the conditional distribution concentrates at the interval's
        # lower end, so treating both cases identically keeps pdf / cdf /
        # ppf / mean finite and inside the support instead of dividing by
        # the vanished ``alpha``.
        self._degenerate = (self._upper - self._lower <= 0) | (self._alpha <= 0)

    @property
    def beta(self) -> float:
        return self._beta

    @property
    def lower(self) -> np.ndarray:
        return self._lower

    @property
    def upper(self) -> np.ndarray:
        return self._upper

    @property
    def alpha(self) -> np.ndarray:
        """Normalization constant(s) ``alpha(beta)``."""
        return self._alpha

    # ------------------------------------------------------------------
    def pdf(self, r: ArrayLike) -> np.ndarray:
        """Density of Eq. 28 (zero outside the interval)."""
        r = np.asarray(r, dtype=np.float64)
        base = np.exp(-np.abs(r) / self._beta) / (2.0 * self._beta)
        inside = (r >= self._lower) & (r <= self._upper) & ~self._degenerate
        with np.errstate(divide="ignore", invalid="ignore"):
            density = np.where(inside, base / self._alpha, 0.0)
        return density

    def cdf(self, r: ArrayLike) -> np.ndarray:
        """Cumulative distribution function on the truncated support."""
        r = np.asarray(r, dtype=np.float64)
        clipped = np.clip(r, self._lower, self._upper)
        partial = bounded_laplace_normalizer(self._beta, self._lower, clipped)
        with np.errstate(divide="ignore", invalid="ignore"):
            value = np.where(self._degenerate, np.where(r >= self._lower, 1.0, 0.0), partial / np.where(self._alpha > 0, self._alpha, 1.0))
        return np.where(r < self._lower, 0.0, np.where(r >= self._upper, 1.0, value))

    def ppf(self, q: ArrayLike) -> np.ndarray:
        """Inverse cdf; the basis of :meth:`sample`.

        Works by inverting the unnormalized Laplace cdf on the interval:
        ``F^{-1}(q) = G^{-1}(G(lower) + q * alpha)`` where ``G`` is the
        unbounded (unnormalized) cdf.
        """
        q = np.asarray(q, dtype=np.float64)
        if np.any((q < 0) | (q > 1)):
            raise PrivacyError("quantiles must lie in [0, 1]")
        g_lower = np.where(
            self._lower < 0,
            0.5 * np.exp(np.minimum(self._lower, 0.0) / self._beta),
            1.0 - 0.5 * np.exp(-np.maximum(self._lower, 0.0) / self._beta),
        )
        target = g_lower + q * self._alpha
        target = np.clip(target, 1e-300, 1.0 - 1e-16)
        negative_branch = target <= 0.5
        with np.errstate(divide="ignore"):
            value = np.where(
                negative_branch,
                self._beta * np.log(2.0 * target),
                -self._beta * np.log(2.0 * (1.0 - target)),
            )
        value = np.clip(value, self._lower, self._upper)
        return np.where(self._degenerate, self._lower, value)

    def sample(
        self, size: SampleShape = None, rng: Union[int, np.random.Generator, None] = None
    ) -> np.ndarray:
        """Draw samples via inverse-cdf; shape follows the broadcast bounds."""
        generator = rng_from(rng)
        shape = self._lower.shape if size is None else size
        q = generator.uniform(size=shape)
        return self.ppf(q)

    def mean(self) -> np.ndarray:
        """Closed-form mean, specialised to intervals with ``lower >= 0``.

        For ``I = [a, b]`` with ``0 <= a <= b``:
        ``E[r] = [ (a + beta) e^{-a/beta} - (b + beta) e^{-b/beta} ] /
        (e^{-a/beta} - e^{-b/beta})``.
        Intervals crossing zero fall back to numerical integration.
        """
        if np.any(self._lower < 0):
            return self._numeric_moment(power=1)
        a, b, beta = self._lower, self._upper, self._beta
        with np.errstate(divide="ignore", invalid="ignore"):
            ea = np.exp(-a / beta)
            eb = np.exp(-b / beta)
            mean = ((a + beta) * ea - (b + beta) * eb) / np.where(ea - eb > 0, ea - eb, 1.0)
        return np.where(self._degenerate, self._lower, mean)

    def variance(self) -> np.ndarray:
        """Variance via the (numeric) second moment."""
        first = self.mean()
        second = self._numeric_moment(power=2)
        return np.maximum(second - first**2, 0.0)

    def _numeric_moment(self, power: int, resolution: int = 2001) -> np.ndarray:
        lower = np.atleast_1d(self._lower)
        upper = np.atleast_1d(self._upper)
        out = np.zeros(lower.shape)
        flat_lower, flat_upper = lower.ravel(), upper.ravel()
        flat_out = out.ravel()
        flat_degenerate = np.atleast_1d(self._degenerate).ravel()
        for i in range(flat_lower.size):
            a, b = flat_lower[i], flat_upper[i]
            if flat_degenerate[i]:
                flat_out[i] = a**power
                continue
            grid = np.linspace(a, b, resolution)
            point = BoundedLaplace(self._beta, a, b)
            flat_out[i] = trapezoid(grid**power * point.pdf(grid), grid)
        result = flat_out.reshape(lower.shape)
        return result if self._lower.ndim else result.reshape(())
