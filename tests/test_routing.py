"""Tests for routing optimization given fixed caches."""

import numpy as np
import pytest

from repro.core.cost import total_cost
from repro.core.routing import (
    optimal_routing_for_cache,
    optimal_routing_for_sbs,
    residual_caps,
)
from repro.core.solution import Solution
from repro.exceptions import ValidationError

from conftest import random_problem


class TestResidualCaps:
    def test_zero_aggregate_gives_connectivity(self, tiny_problem):
        caps = residual_caps(tiny_problem, 0, np.zeros((3, 4)))
        np.testing.assert_allclose(caps[0], 1.0)
        np.testing.assert_allclose(caps[2], 0.0)  # group 2 unreachable from SBS 0

    def test_partial_aggregate(self, tiny_problem):
        aggregate = np.zeros((3, 4))
        aggregate[1, 0] = 0.6
        caps = residual_caps(tiny_problem, 0, aggregate)
        assert caps[1, 0] == pytest.approx(0.4)

    def test_overserved_aggregate_clipped(self, tiny_problem):
        aggregate = np.full((3, 4), 1.7)
        caps = residual_caps(tiny_problem, 0, aggregate)
        assert caps.min() >= 0.0

    def test_bad_sbs(self, tiny_problem):
        with pytest.raises(ValidationError):
            residual_caps(tiny_problem, 9, np.zeros((3, 4)))


class TestPerSBSRouting:
    def test_respects_cache(self, tiny_problem):
        cached = np.array([1.0, 0.0, 0.0, 0.0])
        caps = residual_caps(tiny_problem, 0, np.zeros((3, 4)))
        routing = optimal_routing_for_sbs(tiny_problem, 0, cached, caps)
        assert np.all(routing[:, 1:] == 0.0)

    def test_respects_bandwidth(self, tiny_problem):
        cached = np.ones(4)
        caps = residual_caps(tiny_problem, 0, np.zeros((3, 4)))
        routing = optimal_routing_for_sbs(tiny_problem, 0, cached, caps)
        usage = float(np.sum(routing * tiny_problem.demand))
        assert usage <= tiny_problem.bandwidth[0] + 1e-9

    def test_prefers_high_margin_group(self, tiny_problem):
        """Group 1 has margin 119 vs group 0's 99; with scarce bandwidth
        the SBS serves group 1 first."""
        cached = np.array([1.0, 0.0, 0.0, 0.0])
        caps = residual_caps(tiny_problem, 0, np.zeros((3, 4)))
        # Bandwidth 10 covers group1 f0 (6 units) fully, then group0 partially
        routing = optimal_routing_for_sbs(tiny_problem, 0, cached, caps)
        assert routing[1, 0] == pytest.approx(1.0)
        assert routing[0, 0] == pytest.approx(4.0 / 8.0)

    def test_extra_cost_discourages(self, tiny_problem):
        cached = np.ones(4)
        caps = residual_caps(tiny_problem, 0, np.zeros((3, 4)))
        huge = np.full((3, 4), 1e9)
        routing = optimal_routing_for_sbs(tiny_problem, 0, cached, caps, extra_cost=huge)
        assert np.all(routing == 0.0)


class TestGlobalRouting:
    def test_backends_agree(self, rng):
        for _ in range(5):
            problem = random_problem(rng)
            caching = (rng.uniform(size=(problem.num_sbs, problem.num_files)) < 0.5).astype(float)
            lp = optimal_routing_for_cache(problem, caching, backend="lp")
            flow = optimal_routing_for_cache(problem, caching, backend="flow")
            assert total_cost(problem, lp) == pytest.approx(total_cost(problem, flow), rel=1e-6)

    def test_solution_feasible(self, rng):
        for _ in range(5):
            problem = random_problem(rng)
            caching = np.zeros((problem.num_sbs, problem.num_files))
            for n in range(problem.num_sbs):
                capacity = int(problem.cache_capacity[n])
                chosen = rng.choice(problem.num_files, size=capacity, replace=False)
                caching[n, chosen] = 1.0
            routing = optimal_routing_for_cache(problem, caching)
            report = Solution(caching=caching, routing=routing).check_feasibility(problem)
            assert report.feasible, report.worst()

    def test_empty_cache_routes_nothing(self, tiny_problem):
        routing = optimal_routing_for_cache(tiny_problem, np.zeros((2, 4)))
        assert np.all(routing == 0.0)

    def test_full_cache_beats_partial(self, tiny_problem):
        partial = np.zeros((2, 4))
        partial[:, 0] = 1.0
        full = np.ones((2, 4))
        cost_partial = total_cost(tiny_problem, optimal_routing_for_cache(tiny_problem, partial))
        cost_full = total_cost(tiny_problem, optimal_routing_for_cache(tiny_problem, full))
        assert cost_full <= cost_partial + 1e-9

    def test_unknown_backend(self, tiny_problem):
        with pytest.raises(ValidationError):
            optimal_routing_for_cache(tiny_problem, np.zeros((2, 4)), backend="quantum")
