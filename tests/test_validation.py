"""Tests for the shared validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_binary_array,
    as_float_array,
    as_probability_array,
    check_in_interval,
    check_nonnegative_float,
    check_positive_int,
    require,
    rng_from,
)
from repro.exceptions import ValidationError


class TestAsFloatArray:
    def test_converts_lists(self):
        out = as_float_array([1, 2, 3], "x")
        assert out.dtype == np.float64
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_shape_enforced(self):
        with pytest.raises(ValidationError, match="shape"):
            as_float_array([1.0, 2.0], "x", shape=(3,))

    def test_ndim_enforced(self):
        with pytest.raises(ValidationError, match="dimension"):
            as_float_array([[1.0]], "x", ndim=1)

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            as_float_array([1.0, np.nan], "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError, match="finite"):
            as_float_array([np.inf], "x")

    def test_allows_inf_when_not_finite(self):
        out = as_float_array([np.inf], "x", finite=False)
        assert np.isinf(out[0])

    def test_nonnegative(self):
        with pytest.raises(ValidationError, match="nonnegative"):
            as_float_array([-0.1], "x", nonnegative=True)

    def test_positive(self):
        with pytest.raises(ValidationError, match="positive"):
            as_float_array([0.0], "x", positive=True)

    def test_unconvertible(self):
        with pytest.raises(ValidationError, match="not convertible"):
            as_float_array(["a", object()], "x")


class TestAsBinaryArray:
    def test_snaps_near_values(self):
        out = as_binary_array([1e-12, 1.0 - 1e-12], "x")
        np.testing.assert_array_equal(out, [0.0, 1.0])

    def test_rejects_fractional(self):
        with pytest.raises(ValidationError, match="binary"):
            as_binary_array([0.5], "x")

    def test_rejects_two(self):
        with pytest.raises(ValidationError, match="binary"):
            as_binary_array([2.0], "x")

    def test_shape(self):
        with pytest.raises(ValidationError):
            as_binary_array([0.0, 1.0], "x", shape=(3,))


class TestAsProbabilityArray:
    def test_clips_tolerated_overshoot(self):
        out = as_probability_array([1.0 + 1e-12, -1e-12], "x")
        assert out.max() <= 1.0
        assert out.min() >= 0.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0, 1\]"):
            as_probability_array([1.5], "x")


class TestScalarChecks:
    def test_positive_int_ok(self):
        assert check_positive_int(3, "n") == 3

    def test_positive_int_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")

    def test_positive_int_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")

    def test_positive_int_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")

    def test_numpy_integer_accepted(self):
        assert check_positive_int(np.int64(4), "n") == 4

    def test_nonnegative_float(self):
        assert check_nonnegative_float(0.0, "x") == 0.0

    def test_nonnegative_float_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative_float(-1.0, "x")

    def test_nonnegative_float_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_nonnegative_float(float("nan"), "x")

    def test_in_interval_closed(self):
        assert check_in_interval(0.0, "x", low=0.0, high=1.0) == 0.0

    def test_in_interval_open_bound_rejected(self):
        with pytest.raises(ValidationError):
            check_in_interval(1.0, "x", low=0.0, high=1.0, high_open=True)

    def test_in_interval_low_open(self):
        with pytest.raises(ValidationError):
            check_in_interval(0.0, "x", low=0.0, high=1.0, low_open=True)

    def test_require(self):
        require(True, "fine")
        with pytest.raises(ValidationError, match="boom"):
            require(False, "boom")


class TestRngFrom:
    def test_passthrough_generator(self):
        gen = np.random.default_rng(0)
        assert rng_from(gen) is gen

    def test_seed_reproducible(self):
        a = rng_from(42).uniform()
        b = rng_from(42).uniform()
        assert a == b

    def test_none_gives_generator(self):
        assert isinstance(rng_from(None), np.random.Generator)
