"""Fig. 3 — total serving cost vs privacy budget epsilon.

Paper reference points (Section V-B): LPPM costs 10.1% more than the
optimum at eps = 0.01, dropping to 1.2% at eps = 100; across the sweep
LPPM averages 17.3% below LRFU and 6.6% above the optimum.  Optimum and
LRFU add no noise, so their curves are flat.

The reproduction must match the *shape*: a monotone (in expectation)
decrease of the LPPM overhead with epsilon, the saturation band at small
epsilon near ~10%, near-zero overhead at eps = 100, and LRFU strictly
worst throughout.
"""

import numpy as np

from repro.experiments.figures import figure3_privacy_budget
from repro.experiments.reporting import format_headline_gaps, format_sweep_table
from repro.experiments.runner import average_gap

from _helpers import full_fidelity, save_result

EPSILONS = (0.01, 0.1, 1.0, 10.0, 100.0)


def test_fig3_cost_vs_privacy_budget(benchmark):
    result = benchmark.pedantic(
        lambda: figure3_privacy_budget(epsilons=EPSILONS, fast=not full_fidelity()),
        rounds=1,
        iterations=1,
    )

    optimum = result.series("optimum")
    lppm = result.series("lppm")
    lrfu = result.series("lrfu")

    # Optimum and LRFU are epsilon-independent.
    np.testing.assert_allclose(optimum, optimum[0])
    np.testing.assert_allclose(lrfu, lrfu[0])

    overhead = lppm / optimum - 1.0
    # Saturation at strong privacy: paper reports 10.1%.
    assert 0.05 < overhead[0] < 0.20
    # Near-vanishing overhead at eps = 100: paper reports 1.2%.
    assert overhead[-1] < 0.03
    # The overhead trend decreases along the sweep.
    assert overhead[0] > overhead[-1]
    assert np.all(np.diff(overhead) <= 0.02)  # monotone up to noise

    # LRFU is the most expensive scheme at every point.
    assert np.all(lrfu >= lppm - 1e-6)
    assert np.all(lrfu >= optimum)

    lppm_over_opt = average_gap(result, "lppm", "optimum")
    lppm_vs_lrfu = average_gap(result, "lppm", "lrfu")
    text = "\n".join(
        [
            format_sweep_table(result),
            format_headline_gaps(result),
            "paper: LPPM +10.1% at eps=0.01 -> +1.2% at eps=100; "
            "avg +6.6% over optimum, -17.3% vs LRFU",
            f"measured: LPPM {100 * overhead[0]:+.1f}% at eps=0.01 -> "
            f"{100 * overhead[-1]:+.1f}% at eps=100; "
            f"avg {100 * lppm_over_opt:+.1f}% over optimum, "
            f"{100 * lppm_vs_lrfu:+.1f}% vs LRFU",
        ]
    )
    save_result("fig3_privacy_budget", text)
    benchmark.extra_info["overhead_eps_0.01"] = float(overhead[0])
    benchmark.extra_info["overhead_eps_100"] = float(overhead[-1])
    benchmark.extra_info["avg_over_optimum"] = lppm_over_opt
    benchmark.extra_info["avg_vs_lrfu"] = lppm_vs_lrfu
