"""Fig. 2 — the request distribution of the top trending videos.

Paper: "the number of reviews of top 50 trending videos in 30 minutes";
the first video has ~140k views, the tail a few thousand.  The benchmark
regenerates the top-20 series the figure plots and checks its shape.
"""

import numpy as np

from repro.experiments.figures import figure2_trace
from repro.experiments.reporting import format_series
from repro.workload.zipf import fit_zipf_exponent

from _helpers import save_result


def test_fig2_request_distribution(benchmark):
    views = benchmark(figure2_trace, 20)

    assert views.shape == (20,)
    assert views[0] == 140_000.0
    assert np.all(np.diff(views) <= 0)
    # Heavy tail: top video dominates the 20th by an order of magnitude.
    assert views[0] / views[-1] > 5.0

    full = figure2_trace(50)
    exponent = fit_zipf_exponent(full)
    assert 0.7 < exponent < 1.6  # recognisably Zipf-like

    text = "\n".join(
        [
            format_series("top-20 view counts", views, precision=0),
            f"fitted Zipf exponent over 50 videos: {exponent:.3f}",
            f"tail (50th) views: {full[-1]:.0f}",
        ]
    )
    save_result("fig2_trace", text)
    benchmark.extra_info["head_views"] = float(views[0])
    benchmark.extra_info["zipf_exponent"] = exponent
