"""Convergence tracking for the distributed algorithm.

Theorem 2 guarantees the Gauss-Seidel cost sequence converges to the
optimum; Theorem 3 shows each phase's update is non-increasing even with
LPPM noise.  :class:`CostHistory` records the cost after every phase and
iteration so tests can assert those properties and the benchmarks can
report convergence speed.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

import numpy as np

__all__ = ["PhaseRecord", "CostHistory"]


@dataclasses.dataclass(frozen=True)
class PhaseRecord:
    """Cost snapshot after one SBS finished its phase.

    ``retries`` counts upload retransmissions the ARQ layer needed for
    this phase; ``stale`` marks a phase whose SBS contributed nothing
    fresh (it was crashed, or every delivery attempt failed) so the BS
    reused the last known report — the graceful-degradation path.
    """

    iteration: int
    phase: int
    sbs: int
    cost: float
    noise_l1: float = 0.0
    retries: int = 0
    stale: bool = False


@dataclasses.dataclass
class CostHistory:
    """Cost trajectory of one distributed run."""

    initial_cost: float
    phases: List[PhaseRecord] = dataclasses.field(default_factory=list)
    iteration_costs: List[float] = dataclasses.field(default_factory=list)

    def record_phase(self, record: PhaseRecord) -> None:
        """Append one phase's cost snapshot."""
        self.phases.append(record)

    def close_iteration(self, cost: float) -> None:
        """Record the system cost at the end of a full iteration."""
        self.iteration_costs.append(float(cost))

    @property
    def final_cost(self) -> float:
        if self.iteration_costs:
            return self.iteration_costs[-1]
        return self.initial_cost

    def relative_improvement(self) -> Optional[float]:
        """Last iteration's relative cost change (Algorithm 1's test)."""
        if len(self.iteration_costs) < 2:
            return None
        previous, current = self.iteration_costs[-2], self.iteration_costs[-1]
        if current == 0:
            return 0.0
        return abs(previous - current) / abs(current)

    def phase_costs(self) -> np.ndarray:
        """Per-phase cost values as an array."""
        return np.array([record.cost for record in self.phases])

    def is_non_increasing(self, *, tol: float = 1e-7) -> bool:
        """Whether the per-phase cost trajectory never increases.

        Holds exactly for the noiseless algorithm; with LPPM it holds for
        each phase's *optimization* step but the noise subtraction can
        nudge the evaluated cost either way, so callers should only
        assert this on noiseless runs.
        """
        costs = np.concatenate(([self.initial_cost], self.phase_costs()))
        scale = max(abs(self.initial_cost), 1.0)
        return bool(np.all(np.diff(costs) <= tol * scale))

    def total_noise(self) -> float:
        """Total L1 privacy noise injected across all phases."""
        return float(sum(record.noise_l1 for record in self.phases))

    def stale_phases(self) -> List[PhaseRecord]:
        """Phases where the BS had to reuse a stale report (degradation)."""
        return [record for record in self.phases if record.stale]

    def stale_phase_count(self, iteration: Optional[int] = None) -> int:
        """Number of stale phases (optionally within one iteration)."""
        return sum(
            1
            for record in self.phases
            if record.stale and (iteration is None or record.iteration == iteration)
        )

    def total_retries(self) -> int:
        """Total upload retransmissions across all phases."""
        return sum(record.retries for record in self.phases)

    def summary(self) -> dict:
        """Compact run summary for logs and reports."""
        return {
            "initial_cost": self.initial_cost,
            "final_cost": self.final_cost,
            "iterations": len(self.iteration_costs),
            "phases": len(self.phases),
            "total_noise_l1": self.total_noise(),
            "stale_phases": self.stale_phase_count(),
            "retries": self.total_retries(),
        }
