"""Shared fixtures: small, hand-checkable problem instances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import ProblemInstance


@pytest.fixture
def tiny_problem() -> ProblemInstance:
    """Two SBSs, three MU groups, four files — small enough to reason about.

    SBS 0 reaches groups {0, 1}; SBS 1 reaches groups {1, 2}.  Group 1 is
    shared.  Cache size 2, bandwidth 10 per SBS.
    """
    demand = np.array(
        [
            [8.0, 4.0, 2.0, 1.0],
            [6.0, 3.0, 1.0, 0.5],
            [5.0, 2.5, 1.5, 1.0],
        ]
    )
    connectivity = np.array(
        [
            [1.0, 1.0, 0.0],
            [0.0, 1.0, 1.0],
        ]
    )
    return ProblemInstance(
        demand=demand,
        connectivity=connectivity,
        cache_capacity=np.array([2.0, 2.0]),
        bandwidth=np.array([10.0, 10.0]),
        sbs_cost=np.ones((2, 3)),
        bs_cost=np.array([100.0, 120.0, 110.0]),
    )


@pytest.fixture
def single_sbs_problem() -> ProblemInstance:
    """One SBS, two groups, three files — the simplest nontrivial case."""
    demand = np.array(
        [
            [4.0, 2.0, 1.0],
            [3.0, 2.0, 0.5],
        ]
    )
    return ProblemInstance(
        demand=demand,
        connectivity=np.array([[1.0, 1.0]]),
        cache_capacity=np.array([1.0]),
        bandwidth=np.array([5.0]),
        sbs_cost=np.ones((1, 2)),
        bs_cost=np.array([50.0, 60.0]),
    )


def random_problem(
    rng: np.random.Generator,
    *,
    num_sbs: int = 3,
    num_groups: int = 5,
    num_files: int = 6,
    scarce_bandwidth: bool = True,
) -> ProblemInstance:
    """A random valid instance for property-style tests."""
    demand = rng.uniform(0.0, 5.0, size=(num_groups, num_files))
    connectivity = (rng.uniform(size=(num_sbs, num_groups)) < 0.6).astype(float)
    # Make sure every SBS reaches someone (keeps instances interesting).
    for n in range(num_sbs):
        if connectivity[n].sum() == 0:
            connectivity[n, rng.integers(num_groups)] = 1.0
    total = demand.sum()
    bandwidth_level = total / (2.0 * num_sbs) if scarce_bandwidth else total
    return ProblemInstance(
        demand=demand,
        connectivity=connectivity,
        cache_capacity=np.full(num_sbs, float(rng.integers(1, max(2, num_files // 2) + 1))),
        bandwidth=np.full(num_sbs, bandwidth_level),
        sbs_cost=rng.uniform(0.5, 2.0, size=(num_sbs, num_groups)),
        bs_cost=rng.uniform(50.0, 100.0, size=num_groups),
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
