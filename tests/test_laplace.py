"""Tests for the Laplace and bounded-Laplace distributions (Eq. 28)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PrivacyError
from repro.privacy.laplace import BoundedLaplace, Laplace, bounded_laplace_normalizer


class TestNormalizer:
    def test_full_line_is_one(self):
        alpha = bounded_laplace_normalizer(1.0, -1e9, 1e9)
        assert alpha == pytest.approx(1.0)

    def test_half_line(self):
        alpha = bounded_laplace_normalizer(1.0, 0.0, 1e9)
        assert alpha == pytest.approx(0.5)

    def test_closed_form_on_positive_interval(self):
        beta, b = 2.0, 1.5
        expected = 0.5 * (1.0 - np.exp(-b / beta))
        assert bounded_laplace_normalizer(beta, 0.0, b) == pytest.approx(expected)

    def test_zero_width(self):
        assert bounded_laplace_normalizer(1.0, 0.5, 0.5) == pytest.approx(0.0)

    def test_invalid_beta(self):
        with pytest.raises(PrivacyError):
            bounded_laplace_normalizer(0.0, 0.0, 1.0)

    def test_inverted_interval(self):
        with pytest.raises(PrivacyError):
            bounded_laplace_normalizer(1.0, 1.0, 0.0)


class TestLaplace:
    def test_pdf_peak_at_zero(self):
        dist = Laplace(beta=2.0)
        assert dist.pdf(0.0) == pytest.approx(0.25)

    def test_cdf_at_zero(self):
        assert Laplace(1.0).cdf(0.0) == pytest.approx(0.5)

    def test_cdf_monotone(self):
        dist = Laplace(1.0)
        grid = np.linspace(-5, 5, 101)
        assert np.all(np.diff(dist.cdf(grid)) >= 0)

    def test_sample_moments(self):
        dist = Laplace(beta=1.5)
        samples = dist.sample(size=20000, rng=0)
        assert samples.mean() == pytest.approx(0.0, abs=0.05)
        assert samples.var() == pytest.approx(dist.variance(), rel=0.1)

    def test_invalid_beta(self):
        with pytest.raises(PrivacyError):
            Laplace(beta=-1.0)


class TestBoundedLaplace:
    def test_pdf_zero_outside(self):
        dist = BoundedLaplace(1.0, 0.0, 0.5)
        assert dist.pdf(-0.1) == 0.0
        assert dist.pdf(0.6) == 0.0
        assert dist.pdf(0.25) > 0.0

    def test_pdf_integrates_to_one(self):
        dist = BoundedLaplace(0.7, 0.0, 0.9)
        grid = np.linspace(0.0, 0.9, 5001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-3)

    def test_pdf_matches_eq28_form(self):
        """pdf(r) = (1/alpha) * (1/(2 beta)) * exp(-|r|/beta) inside I."""
        beta, b = 0.5, 0.8
        dist = BoundedLaplace(beta, 0.0, b)
        r = 0.3
        alpha = bounded_laplace_normalizer(beta, 0.0, b)
        expected = np.exp(-abs(r) / beta) / (2.0 * beta * alpha)
        assert dist.pdf(r) == pytest.approx(float(expected))

    def test_cdf_endpoints(self):
        dist = BoundedLaplace(1.0, 0.0, 0.5)
        assert dist.cdf(0.0 - 1e-12) == pytest.approx(0.0)
        assert dist.cdf(0.5) == pytest.approx(1.0)

    def test_cdf_monotone(self):
        dist = BoundedLaplace(0.3, 0.0, 1.0)
        grid = np.linspace(-0.2, 1.2, 200)
        assert np.all(np.diff(dist.cdf(grid)) >= -1e-12)

    def test_ppf_inverts_cdf(self):
        dist = BoundedLaplace(0.4, 0.0, 0.7)
        for q in (0.01, 0.25, 0.5, 0.75, 0.99):
            r = float(dist.ppf(q))
            assert float(dist.cdf(r)) == pytest.approx(q, abs=1e-6)

    def test_samples_inside_interval(self):
        dist = BoundedLaplace(1.0, 0.0, 0.5)
        samples = dist.sample(size=1000, rng=0)
        assert samples.min() >= 0.0
        assert samples.max() <= 0.5

    def test_sample_mean_matches_closed_form(self):
        dist = BoundedLaplace(0.2, 0.0, 1.0)
        samples = dist.sample(size=40000, rng=1)
        assert samples.mean() == pytest.approx(float(dist.mean()), rel=0.05)

    def test_small_beta_concentrates_near_zero(self):
        tight = BoundedLaplace(0.01, 0.0, 1.0)
        assert float(tight.mean()) < 0.02

    def test_large_beta_approaches_uniform(self):
        """As beta -> inf the bounded Laplace tends to Uniform[0, b]."""
        flat = BoundedLaplace(1e6, 0.0, 1.0)
        assert float(flat.mean()) == pytest.approx(0.5, abs=1e-3)

    def test_degenerate_interval(self):
        dist = BoundedLaplace(1.0, 0.3, 0.3)
        samples = dist.sample(size=10, rng=0)
        np.testing.assert_allclose(samples, 0.3)
        assert float(dist.mean()) == pytest.approx(0.3)

    def test_zero_width_at_origin_is_point_mass(self):
        """The mechanism's y = 0 cells give I = [0, 0]; everything is finite."""
        dist = BoundedLaplace(0.5, 0.0, 0.0)
        assert float(dist.sample(rng=0)) == 0.0
        assert float(dist.mean()) == 0.0
        assert float(dist.variance()) == 0.0
        assert float(dist.cdf(0.0)) == 1.0
        assert float(dist.ppf(0.5)) == 0.0

    def test_tail_interval_with_underflowed_normalizer(self):
        """Regression: alpha underflow must not leak NaN or escape the support.

        For a narrow interval deep in the Laplace tail every double in it
        rounds to density zero, so the closed-form normalizer underflows
        to exactly 0.  Before the guard, pdf returned NaN (0/0), mean
        returned 0.0 — *outside* the interval — and ppf walked to the
        upper bound.  The distribution must collapse to a point mass at
        the lower bound instead (the analytic limit: the conditional
        density concentrates at the interval's near end).
        """
        dist = BoundedLaplace(0.01, 8.0, 8.1)
        assert float(dist.alpha) == 0.0  # the underflow actually happens
        assert float(dist.pdf(8.05)) == 0.0 and np.isfinite(dist.pdf(8.05))
        assert float(dist.mean()) == 8.0
        assert float(dist.variance()) == 0.0
        samples = dist.sample(size=16, rng=0)
        assert np.all(np.isfinite(samples))
        np.testing.assert_allclose(samples, 8.0)
        np.testing.assert_allclose(dist.cdf([7.9, 8.0, 8.05, 8.2]), [0, 1, 1, 1])

    def test_mixed_vector_with_underflowed_cells(self):
        """Healthy, zero-width and underflowed cells coexist in one vector."""
        lower = np.array([0.0, 0.0, 700.0])
        upper = np.array([0.3, 0.0, 700.5])
        dist = BoundedLaplace(0.5, lower, upper)
        samples = dist.sample(rng=1)
        mean = dist.mean()
        for values in (samples, mean):
            assert np.all(np.isfinite(values))
            assert np.all(values >= lower) and np.all(values <= upper)
        assert samples[1] == 0.0 and samples[2] == 700.0

    def test_vectorized_bounds(self):
        upper = np.array([0.0, 0.2, 0.5])
        dist = BoundedLaplace(0.5, np.zeros(3), upper)
        samples = dist.sample(rng=0)
        assert samples.shape == (3,)
        assert samples[0] == 0.0
        assert np.all(samples <= upper + 1e-12)

    def test_variance_nonnegative(self):
        dist = BoundedLaplace(0.5, 0.0, 0.8)
        assert float(dist.variance()) >= 0.0

    def test_ppf_rejects_bad_quantiles(self):
        dist = BoundedLaplace(1.0, 0.0, 1.0)
        with pytest.raises(PrivacyError):
            dist.ppf(1.5)

    def test_invalid_interval(self):
        with pytest.raises(PrivacyError):
            BoundedLaplace(1.0, 1.0, 0.0)

    @given(
        st.floats(0.05, 5.0),
        st.floats(0.01, 1.0),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_ppf_cdf_roundtrip_property(self, beta, upper, q):
        dist = BoundedLaplace(beta, 0.0, upper)
        r = float(dist.ppf(q))
        assert 0.0 - 1e-9 <= r <= upper + 1e-9
        assert float(dist.cdf(r)) == pytest.approx(q, abs=1e-5)

    def test_privacy_likelihood_ratio_bound(self):
        """The epsilon-DP inequality (26) for the bounded Laplace output:
        densities at any point for two inputs differing by Delta are
        within exp(Delta/beta) of each other (up to the normalizer
        ratio, bounded the same way)."""
        beta = 2.0
        delta_input = 1.0
        # A shifted mechanism output corresponds to the density evaluated
        # at r vs r - delta_input.
        grid = np.linspace(0.0, 1.0, 51)
        base = np.exp(-np.abs(grid) / beta)
        shifted = np.exp(-np.abs(grid - delta_input) / beta)
        ratio = np.max(base / shifted)
        assert ratio <= np.exp(delta_input / beta) + 1e-9
