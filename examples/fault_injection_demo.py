#!/usr/bin/env python3
"""Fault injection: Algorithm 1 on an unreliable network.

The paper's protocol assumes every policy upload and aggregate
broadcast arrives.  Real backhaul links drop packets and small base
stations reboot.  This demo wraps the distributed optimizer in the
seeded fault layer (``FaultyChannel``) and shows two degradation
curves against the failure-free optimum:

* **final cost vs upload drop rate** — the stop-and-wait ARQ layer
  (sequence numbers + acks + capped exponential backoff) repairs
  moderate loss at the price of retransmissions;
* **final cost vs crash duration** — a crashed SBS keeps *serving*
  its last committed policy while the BS reuses its stale report, so
  cost degrades gracefully instead of the run aborting; on recovery
  the SBS restores its multipliers from a checkpoint and rejoins.

Run:  python examples/fault_injection_demo.py
"""

from repro.core.distributed import DistributedConfig, solve_distributed
from repro.experiments.config import ScenarioConfig, build_problem
from repro.network.faults import FaultConfig, FaultSchedule, LinkFaultProfile
from repro.network.messaging import MessageKind
from repro.workload.trace import TraceConfig

DROP_RATES = (0.0, 0.05, 0.10, 0.20, 0.30, 0.50)
CRASH_DURATIONS = (0, 1, 2, 3, 5)


def main() -> None:
    scenario = ScenarioConfig(
        num_groups=12,
        num_links=18,
        bandwidth=200.0,
        cache_capacity=4,
        trace=TraceConfig(num_videos=18, head_views=10_000.0, tail_views=400.0),
        demand_to_bandwidth=3.0,
    )
    problem = build_problem(scenario)
    config = DistributedConfig(accuracy=1e-5, max_iterations=15)
    clean = solve_distributed(problem, config)
    print(
        f"Problem: {problem.num_sbs} SBSs, {problem.num_groups} groups, "
        f"{problem.num_files} files; failure-free cost {clean.cost:,.1f} "
        f"in {clean.iterations} iterations"
    )

    print(f"\n{'drop rate':>9} | {'final cost':>12} | {'gap':>8} | "
          f"{'drops':>5} | {'retries':>7} | {'stale':>5}")
    print("-" * 62)
    for rate in DROP_RATES:
        faults = FaultConfig(
            by_kind={MessageKind.POLICY_UPLOAD: LinkFaultProfile(drop=rate)},
            seed=7,
        )
        result = solve_distributed(problem, config, faults=faults)
        gap = result.cost / clean.cost - 1.0
        print(
            f"{rate:>9.0%} | {result.cost:>12,.1f} | {gap:>+8.3%} | "
            f"{result.channel.stats.dropped:>5} | "
            f"{result.total_retries:>7} | {result.stale_phases:>5}"
        )

    print(f"\n{'crash len':>9} | {'final cost':>12} | {'gap':>8} | "
          f"{'stale':>5} | stale iterations")
    print("-" * 62)
    for duration in CRASH_DURATIONS:
        if duration == 0:
            schedule = FaultSchedule()
        else:
            schedule = FaultSchedule().crash_sbs(1, at=1, recover_at=1 + duration)
        result = solve_distributed(problem, config, faults=FaultConfig(schedule=schedule))
        gap = result.cost / clean.cost - 1.0
        stale_iters = sorted({r.iteration for r in result.history.stale_phases()})
        print(
            f"{duration:>9} | {result.cost:>12,.1f} | {gap:>+8.3%} | "
            f"{result.stale_phases:>5} | {stale_iters}"
        )

    print(
        "\nModerate loss is invisible in the final cost — retries repair "
        "it within the same phase.  A crashed SBS shows up as stale "
        "phases (the BS reuses its last report and residual demand falls "
        "back to the macro BS at cost f2), and convergence is simply "
        "deferred until the node recovers from its checkpoint."
    )


if __name__ == "__main__":
    main()
