#!/usr/bin/env python3
"""Video-CDN offloading: the paper's motivating Netflix-style scenario.

A content provider (the BS / core network) cooperates with three edge
operators' SBSs to serve a trending-video workload.  This example builds
the workload and topology from the low-level substrates (instead of the
one-call scenario builder), runs Algorithm 1, and reports operational
metrics a CDN engineer would look at: offload ratio, per-SBS cache
contents, bandwidth utilization, and the back-haul traffic saved.

Run:  python examples/video_cdn_offloading.py
"""

import numpy as np

from repro.core import DistributedConfig, ProblemInstance, solve_distributed
from repro.network import (
    connectivity_by_proximity,
    place_network,
    transmission_costs,
)
from repro.workload import TraceConfig, assign_requests, trending_video_trace


def build_cdn_problem(seed: int = 42) -> ProblemInstance:
    """Assemble a problem from trace + placement + costs, step by step."""
    trace = trending_video_trace(TraceConfig(num_videos=50))
    print(
        f"Trace: {trace.num_videos} trending videos, "
        f"{trace.total_views():,.0f} views in {trace.window_minutes:.0f} min "
        f"(head {trace.views[0]:,.0f}, tail {trace.views[-1]:,.0f})"
    )

    placement = place_network(
        num_sbs=3,
        num_groups=30,
        cache_capacity=8,
        bandwidth=1000.0,
        operators=["operator-A", "operator-B", "operator-C"],
        rng=seed,
    )
    connectivity = connectivity_by_proximity(placement, num_links=40)
    sbs_cost, bs_cost = transmission_costs(placement, rng=seed)

    # Scale the trace so demand is 3.5x the total edge bandwidth — the
    # congested evening-peak regime the paper evaluates.
    volumes = trace.scaled_demand(3.5 * 1000.0 * 3)
    demand = assign_requests(volumes, placement.num_groups, rng=seed)

    return ProblemInstance(
        demand=demand,
        connectivity=connectivity,
        cache_capacity=np.array([float(s.cache_capacity) for s in placement.sbss]),
        bandwidth=np.array([s.bandwidth for s in placement.sbss]),
        sbs_cost=sbs_cost,
        bs_cost=bs_cost,
    )


def main() -> None:
    problem = build_cdn_problem()
    print()

    result = solve_distributed(
        problem, DistributedConfig(accuracy=1e-5, max_iterations=15)
    )
    solution = result.solution

    print(f"Algorithm 1 converged in {result.iterations} iterations")
    print(f"Total serving cost: {result.cost:,.0f} (vs {problem.max_cost():,.0f} all-backhaul)")
    offloaded = solution.offloaded_traffic(problem)
    print(
        f"Offload ratio: {offloaded / problem.total_demand():.1%} of "
        f"{problem.total_demand():,.0f} requested units served at the edge"
    )
    print()

    usage = solution.bandwidth_usage(problem)
    for n in range(problem.num_sbs):
        cached = sorted(int(f) for f in np.flatnonzero(solution.caching[n]))
        print(
            f"SBS {n}: caches videos {cached} | "
            f"radio load {usage[n]:,.0f}/{problem.bandwidth[n]:,.0f} "
            f"({usage[n] / problem.bandwidth[n]:.0%})"
        )

    print()
    overlap = solution.caching.sum(axis=0)
    duplicated = int(np.sum(overlap >= 2))
    print(
        f"Cache diversity: {int(np.sum(overlap >= 1))} distinct videos cached, "
        f"{duplicated} held by multiple operators (popular head content)"
    )
    saved = problem.max_cost() - result.cost
    print(f"Back-haul cost saved by edge caching: {saved:,.0f} ({saved / problem.max_cost():.1%})")


if __name__ == "__main__":
    main()
