"""Minimum-cost flow via successive shortest augmenting paths.

Used as the exact combinatorial solver for the *routing-given-cache*
problem (allocating SBS bandwidth to requests once the caching policy is
fixed), and cross-checked against the LP solvers in the tests.

The implementation is the textbook successive-shortest-paths algorithm
with Johnson node potentials, so each augmentation runs a Dijkstra over
the residual network with nonnegative reduced costs.  Capacities may be
real-valued; each augmentation saturates at least one residual arc, and
for the bipartite transportation networks built by
:func:`repro.core.routing.optimal_routing_for_cache` the number of
augmentations is bounded by the number of arcs.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ValidationError

__all__ = ["FlowNetwork", "FlowResult", "min_cost_flow"]

_EPS = 1e-12


@dataclasses.dataclass
class _Arc:
    head: int
    capacity: float
    cost: float
    flow: float = 0.0

    @property
    def residual(self) -> float:
        return self.capacity - self.flow


class FlowNetwork:
    """A directed flow network with paired residual arcs.

    Nodes are integers ``0..num_nodes-1``.  :meth:`add_arc` creates the
    forward arc and its zero-capacity reverse partner; they live at even
    and odd indices of the arc list so ``index ^ 1`` flips direction.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes <= 0:
            raise ValidationError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self._arcs: List[_Arc] = []
        self._adjacency: List[List[int]] = [[] for _ in range(num_nodes)]

    def add_arc(self, tail: int, head: int, capacity: float, cost: float) -> int:
        """Add an arc; returns its index (use :meth:`flow_on` to query flow)."""
        for node, name in ((tail, "tail"), (head, "head")):
            if not 0 <= node < self.num_nodes:
                raise ValidationError(f"{name} node {node} out of range [0, {self.num_nodes})")
        if capacity < 0 or not np.isfinite(cost):
            raise ValidationError("arc capacity must be >= 0 and cost finite")
        index = len(self._arcs)
        self._arcs.append(_Arc(head=head, capacity=float(capacity), cost=float(cost)))
        self._arcs.append(_Arc(head=tail, capacity=0.0, cost=-float(cost)))
        self._adjacency[tail].append(index)
        self._adjacency[head].append(index + 1)
        return index

    def flow_on(self, arc_index: int) -> float:
        """Flow currently routed on the forward arc ``arc_index``."""
        return self._arcs[arc_index].flow

    # -- internal accessors used by the solver -------------------------
    @property
    def arcs(self) -> List[_Arc]:
        return self._arcs

    @property
    def adjacency(self) -> List[List[int]]:
        return self._adjacency


@dataclasses.dataclass(frozen=True)
class FlowResult:
    """Total flow shipped and its cost."""

    flow_value: float
    cost: float
    augmentations: int


def _initial_potentials(network: FlowNetwork, source: int) -> np.ndarray:
    """Bellman-Ford potentials so reduced costs start nonnegative.

    Needed when the network has negative-cost arcs (our transportation
    networks use negative costs to encode savings maximization).
    """
    num_nodes = network.num_nodes
    potential = np.full(num_nodes, np.inf)
    potential[source] = 0.0
    for _ in range(num_nodes - 1):
        changed = False
        for tail in range(num_nodes):
            if not np.isfinite(potential[tail]):
                continue
            for arc_index in network.adjacency[tail]:
                arc = network.arcs[arc_index]
                if arc.residual > _EPS and potential[tail] + arc.cost < potential[arc.head] - _EPS:
                    potential[arc.head] = potential[tail] + arc.cost
                    changed = True
        if not changed:
            break
    potential[~np.isfinite(potential)] = 0.0
    return potential


def min_cost_flow(
    network: FlowNetwork,
    source: int,
    sink: int,
    *,
    max_flow: Optional[float] = None,
    stop_when_costly: bool = False,
) -> FlowResult:
    """Ship up to ``max_flow`` units from ``source`` to ``sink`` at min cost.

    With ``stop_when_costly=True`` the algorithm stops as soon as the
    cheapest augmenting path has nonnegative cost — i.e. it computes the
    *profit-maximizing* flow rather than the maximum flow, which is what
    the routing problem needs (serving extra requests at a loss is never
    optimal).
    """
    if source == sink:
        raise ValidationError("source and sink must differ")
    budget = np.inf if max_flow is None else float(max_flow)
    if budget < 0:
        raise ValidationError(f"max_flow must be nonnegative, got {max_flow}")

    potential = _initial_potentials(network, source)
    total_flow = 0.0
    total_cost = 0.0
    augmentations = 0

    while total_flow < budget - _EPS:
        # Dijkstra on reduced costs.
        dist = np.full(network.num_nodes, np.inf)
        dist[source] = 0.0
        parent_arc: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist[node] + _EPS:
                continue
            for arc_index in network.adjacency[node]:
                arc = network.arcs[arc_index]
                if arc.residual <= _EPS:
                    continue
                reduced = arc.cost + potential[node] - potential[arc.head]
                candidate = d + reduced
                if candidate < dist[arc.head] - _EPS:
                    dist[arc.head] = candidate
                    parent_arc[arc.head] = arc_index
                    heapq.heappush(heap, (candidate, arc.head))
        if not np.isfinite(dist[sink]):
            break
        path_cost = dist[sink] - potential[source] + potential[sink]
        if stop_when_costly and path_cost >= -_EPS:
            break

        finite = np.isfinite(dist)
        potential[finite] += dist[finite]

        # Find bottleneck along the path.
        bottleneck = budget - total_flow
        node = sink
        while node != source:
            arc = network.arcs[parent_arc[node]]
            bottleneck = min(bottleneck, arc.residual)
            node = network.arcs[parent_arc[node] ^ 1].head
        if bottleneck <= _EPS:
            break
        # Apply flow.
        node = sink
        while node != source:
            arc_index = parent_arc[node]
            network.arcs[arc_index].flow += bottleneck
            network.arcs[arc_index ^ 1].flow -= bottleneck
            node = network.arcs[arc_index ^ 1].head
        total_flow += bottleneck
        total_cost += bottleneck * path_cost
        augmentations += 1

    return FlowResult(flow_value=total_flow, cost=total_cost, augmentations=augmentations)
