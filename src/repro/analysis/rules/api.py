"""API-hygiene rule: ``__all__`` must match what the module defines.

``repro`` leans on ``__all__`` for its public surface (the quality-gate
tests iterate it, and the ``__init__`` re-export chain is how users
import everything).  A name listed in ``__all__`` that the module never
defines raises ``AttributeError`` only when someone finally touches it
— typically in a downstream ``import *`` or a docs build.  This rule
checks statically that every ``__all__`` entry is a string naming a
definition, import, or assignment in the module, and that no entry is
duplicated.

Files using ``from x import *`` are skipped for the undefined-name
check (the star import may provide anything).
"""

from __future__ import annotations

import ast
from typing import Sequence
from typing import Iterator, Optional, Set

from ..findings import Finding
from .base import FileContext, Rule, register

__all__ = ["AllMismatch"]


def _collect_module_names(tree: ast.Module) -> "tuple[Set[str], bool]":
    """Names bound at module level (recursing into if/try/with, not defs)."""
    names: Set[str] = set()
    has_star = False

    def visit_block(statements: Sequence[ast.stmt]) -> None:
        nonlocal has_star
        for statement in statements:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(statement.name)
            elif isinstance(statement, ast.Import):
                for alias in statement.names:
                    names.add(alias.asname or alias.name.split(".")[0])
            elif isinstance(statement, ast.ImportFrom):
                for alias in statement.names:
                    if alias.name == "*":
                        has_star = True
                    else:
                        names.add(alias.asname or alias.name)
            elif isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                for target in targets:
                    for node in ast.walk(target):
                        if isinstance(node, ast.Name):
                            names.add(node.id)
            elif isinstance(statement, (ast.If, ast.Try)):
                for attr in ("body", "orelse", "finalbody"):
                    visit_block(getattr(statement, attr, []) or [])
                for handler in getattr(statement, "handlers", []):
                    visit_block(handler.body)
            elif isinstance(statement, (ast.With, ast.AsyncWith)):
                visit_block(statement.body)
            elif isinstance(statement, (ast.For, ast.AsyncFor, ast.While)):
                visit_block(statement.body)
                visit_block(statement.orelse)

    visit_block(tree.body)
    return names, has_star


def _find_all_assignment(tree: ast.Module) -> Optional[ast.Assign]:
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    return statement
    return None


@register
class AllMismatch(Rule):
    """Flag ``__all__`` entries that the module never defines (or repeats)."""

    code = "REPRO501"
    name = "all-mismatch"
    summary = "__all__ names something the module does not define, or repeats an entry"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Cross-check ``__all__`` entries against module-level bindings."""
        assignment = _find_all_assignment(ctx.tree)
        if assignment is None:
            return
        value = assignment.value
        if not isinstance(value, (ast.List, ast.Tuple)):
            return  # computed __all__ (concatenation etc.) is out of scope
        entries = []
        for element in value.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                yield self.finding(
                    ctx, element, "__all__ entries must be string literals"
                )
                continue
            entries.append((element, element.value))

        seen: Set[str] = set()
        defined, has_star = _collect_module_names(ctx.tree)
        defined.add("__version__")  # dunder assignments are collected anyway
        for element, name in entries:
            if name in seen:
                yield self.finding(ctx, element, f"duplicate __all__ entry {name!r}")
                continue
            seen.add(name)
            if has_star:
                continue
            if name not in defined and not name.startswith("__"):
                yield self.finding(
                    ctx,
                    element,
                    f"__all__ lists {name!r} but the module never defines or imports it",
                )
