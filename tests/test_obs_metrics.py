"""Tests for the labeled metrics layer: registry, derivation, parity."""

import json

import numpy as np
import pytest
from conftest import random_problem

from repro import obs
from repro.core.asynchronous import AsyncConfig, solve_asynchronous
from repro.core.distributed import DistributedConfig, solve_distributed
from repro.core.online import OnlineConfig, simulate_online
from repro.exceptions import ValidationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_sweep
from repro.obs.metrics import (
    MAX_SERIES_PER_FAMILY,
    Histogram,
    MetricsRegistry,
    label_value,
)
from repro.privacy.mechanism import LPPMConfig

CONFIG = DistributedConfig(accuracy=1e-3, max_iterations=4)


class TestLabelValue:
    def test_bool_renders_lowercase(self):
        assert label_value(True) == "true"
        assert label_value(False) == "false"

    def test_numpy_bool_matches_python_bool(self):
        assert label_value(np.bool_(True)) == "true"

    def test_integral_float_drops_point(self):
        assert label_value(5.0) == "5"
        assert label_value(np.float64(5.0)) == "5"

    def test_plain_values(self):
        assert label_value(3) == "3"
        assert label_value("sbs-0") == "sbs-0"
        assert label_value(1.5) == "1.5"


class TestInstruments:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_x_total", "x").labels()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValidationError):
            counter.inc(-1.0)

    def test_gauge_last_write_wins(self):
        gauge = MetricsRegistry().gauge("repro_g", "g").labels()
        gauge.set(10.0)
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_histogram_boundary_is_inclusive(self):
        hist = Histogram((1.0, 2.0))
        hist.observe(1.0)  # exactly the first bound -> first bucket
        hist.observe(2.0)  # exactly the second bound -> second bucket
        hist.observe(2.0001)  # above all finite bounds -> +Inf
        assert hist.counts == [1, 1]
        assert hist.inf_count == 1
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.0001)

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValidationError):
            Histogram(())
        with pytest.raises(ValidationError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValidationError):
            Histogram((2.0, 1.0))


class TestFamilies:
    def test_empty_label_set(self):
        registry = MetricsRegistry()
        family = registry.counter("repro_plain_total", "no labels")
        family.labels().inc()
        snap = family.snapshot()
        assert snap["labels"] == []
        assert snap["series"] == [{"labels": {}, "value": 1.0}]

    def test_label_name_mismatch_rejected(self):
        family = MetricsRegistry().counter("repro_t_total", "t", ("sbs",))
        with pytest.raises(ValidationError):
            family.labels(scheme="lppm")
        with pytest.raises(ValidationError):
            family.labels()  # missing the declared label
        with pytest.raises(ValidationError):
            family.labels(sbs=0, extra=1)

    def test_cardinality_cap(self):
        family = MetricsRegistry().counter("repro_c_total", "c", ("i",))
        for i in range(MAX_SERIES_PER_FAMILY):
            family.labels(i=i).inc()
        with pytest.raises(ValidationError):
            family.labels(i=MAX_SERIES_PER_FAMILY).inc()
        # Existing series stay writable at the cap.
        family.labels(i=0).inc()

    def test_duplicate_label_name_rejected(self):
        with pytest.raises(ValidationError):
            MetricsRegistry().counter("repro_d_total", "d", ("a", "a"))


class TestRegistry:
    def test_reregistration_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_x_total", "x", ("sbs",))
        second = registry.counter("repro_x_total", "x", ("sbs",))
        assert first is second

    def test_conflicting_registration_rejected(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("sbs",))
        with pytest.raises(ValidationError):
            registry.gauge("repro_x_total", "x", ("sbs",))
        with pytest.raises(ValidationError):
            registry.counter("repro_x_total", "x", ("scheme",))

    def test_conflicting_histogram_buckets_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("repro_h", "h", buckets=(1.0, 2.0))
        with pytest.raises(ValidationError):
            registry.histogram("repro_h", "h", buckets=(1.0, 3.0))

    def test_snapshot_is_sorted_and_versioned(self):
        registry = MetricsRegistry()
        registry.counter("repro_b_total", "b").labels().inc()
        registry.counter("repro_a_total", "a").labels().inc()
        snap = registry.snapshot()
        assert snap["metrics_version"] == 1
        assert list(snap["families"]) == ["repro_a_total", "repro_b_total"]

    def test_to_json_deterministic_only_drops_seconds(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x").labels().inc()
        registry.histogram("repro_x_seconds", "wall clock").labels().observe(0.5)
        full = json.loads(registry.to_json())
        trimmed = json.loads(registry.to_json(deterministic_only=True))
        assert "repro_x_seconds" in full["families"]
        assert "repro_x_seconds" not in trimmed["families"]
        assert "repro_x_total" in trimmed["families"]

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x events", ("sbs",)).labels(sbs=0).inc(2)
        hist = registry.histogram("repro_h", "hist", buckets=(1.0, 2.0)).labels()
        hist.observe(0.5)
        hist.observe(1.5)
        hist.observe(9.0)
        text = registry.to_prometheus()
        assert "# HELP repro_x_total x events" in text
        assert "# TYPE repro_x_total counter" in text
        assert 'repro_x_total{sbs="0"} 2' in text
        # Cumulative le buckets plus +Inf, sum and count.
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text
        assert "repro_h_sum 11" in text
        assert "repro_h_count 3" in text

    def test_prometheus_escapes_label_values(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", "x", ("p",)).labels(p='a"b').inc()
        assert 'p="a\\"b"' in registry.to_prometheus()


class TestMerge:
    def test_disjoint_families_carry_over(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("repro_a_total", "a").labels().inc()
        right.counter("repro_b_total", "b").labels().inc(2)
        merged = left.merge(right)
        assert merged is left
        assert left.family("repro_a_total").labels().value == 1.0
        assert left.family("repro_b_total").labels().value == 2.0

    def test_overlapping_counters_add_gauges_overwrite(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("repro_c_total", "c").labels().inc(1)
        right.counter("repro_c_total", "c").labels().inc(2)
        left.gauge("repro_g", "g").labels().set(1.0)
        right.gauge("repro_g", "g").labels().set(9.0)
        left.merge(right)
        assert left.family("repro_c_total").labels().value == 3.0
        assert left.family("repro_g").labels().value == 9.0

    def test_histograms_add_bucketwise(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.histogram("repro_h", "h", buckets=(1.0, 2.0)).labels().observe(0.5)
        right.histogram("repro_h", "h", buckets=(1.0, 2.0)).labels().observe(1.5)
        left.merge(right)
        child = left.family("repro_h").labels()
        assert child.counts == [1, 1]
        assert child.count == 2
        assert child.sum == pytest.approx(2.0)

    def test_conflicting_kind_rejected(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.counter("repro_x", "x").labels().inc()
        right.gauge("repro_x", "x").labels().set(1.0)
        with pytest.raises(ValidationError):
            left.merge(right)


class TestLiveOfflineParity:
    """The tentpole invariant: live metering == offline derivation, byte-wise."""

    def _problem(self, seed=0):
        return random_problem(np.random.default_rng(seed))

    def test_algorithm1_snapshots_byte_identical(self, tmp_path):
        problem = self._problem()
        trace = tmp_path / "run.jsonl"
        with obs.metering(trace=trace) as registry:
            solve_distributed(problem, CONFIG, rng=1)
        live = registry.to_json()
        offline = obs.derive_metrics(trace).to_json()
        assert live == offline

    def test_private_run_epsilon_families(self, tmp_path):
        problem = self._problem()
        trace = tmp_path / "run.jsonl"
        with obs.metering(trace=trace) as registry:
            solve_distributed(problem, CONFIG, privacy=LPPMConfig(epsilon=0.5), rng=1)
        assert registry.to_json() == obs.derive_metrics(trace).to_json()
        snap = registry.snapshot()["families"]
        assert "repro_privacy_epsilon_total" in snap
        assert "repro_privacy_epsilon_per_release" in snap
        total = sum(
            row["value"] for row in snap["repro_privacy_epsilon_total"]["series"]
        )
        assert total > 0.0

    def test_metrics_only_run_without_trace(self):
        problem = self._problem()
        with obs.metering() as registry:
            result = solve_distributed(problem, CONFIG, rng=1)
        families = registry.snapshot()["families"]
        assert families["repro_runs_total"]["series"][0]["value"] == 1.0
        cost = families["repro_run_final_cost"]["series"][0]["value"]
        assert cost == pytest.approx(result.cost)

    def test_async_run_derives_staleness(self, tmp_path):
        problem = self._problem()
        trace = tmp_path / "async.jsonl"
        with obs.metering(trace=trace) as registry:
            solve_asynchronous(problem, AsyncConfig(duration=15.0), rng=3)
        assert registry.to_json() == obs.derive_metrics(trace).to_json()
        families = registry.snapshot()["families"]
        assert "repro_async_staleness" in families
        assert "repro_async_updates_total" in families

    def test_online_run_derives_slots(self, tmp_path):
        problem = self._problem()
        rng = np.random.default_rng(5)
        slots = [
            problem.demand * rng.uniform(0.7, 1.3, size=problem.demand.shape)
            for _ in range(4)
        ]
        trace = tmp_path / "online.jsonl"
        with obs.metering(trace=trace) as registry:
            simulate_online(
                problem,
                slots,
                OnlineConfig(
                    reoptimize_every=2,
                    switch_cost=1.0,
                    distributed=CONFIG,
                ),
            )
        assert registry.to_json() == obs.derive_metrics(trace).to_json()
        families = registry.snapshot()["families"]
        assert "repro_slots_total" in families
        assert "repro_serving_cost_total" in families


class TestSweepRollups:
    def _sweep(self, **kwargs):
        scenario = ScenarioConfig(num_groups=8, num_links=10, seed=3)
        return run_sweep(
            "metrics-sweep",
            "epsilon",
            [0.1, 1.0],
            lambda _x: scenario,
            epsilon_of_x=lambda x: float(x),
            seeds=(7, 11),
            distributed_config=DistributedConfig(accuracy=1e-3, max_iterations=2),
            **kwargs,
        )

    def test_parallel_rollup_matches_serial(self):
        with obs.metering(timings=False) as serial:
            self._sweep(workers=1)
        with obs.metering(timings=False) as parallel:
            self._sweep(workers=3)
        assert serial.to_json() == parallel.to_json()

    def test_scheme_rollups_present(self):
        with obs.metering(timings=False) as registry:
            self._sweep(workers=2)
        families = registry.snapshot()["families"]
        # LRFU has no solver protocol, so only the Algorithm 1 schemes
        # produce run_end rollups; every scheme still counts its cells.
        run_schemes = {
            row["labels"]["scheme"]
            for row in families["repro_scheme_runs_total"]["series"]
        }
        assert run_schemes == {"optimum", "lppm"}
        cell_schemes = {
            row["labels"]["scheme"]
            for row in families["repro_sweep_cells_total"]["series"]
        }
        assert cell_schemes == {"optimum", "lppm", "lrfu"}
        assert "repro_cell_final_cost" in families


class TestTimings:
    """Satellite 1: tracing alone produces per-phase timings (no perf registry)."""

    def test_phase_events_carry_solve_seconds_by_default(self):
        problem = random_problem(np.random.default_rng(3))
        recorder = obs.ListRecorder()
        with obs.recording(recorder):
            solve_distributed(problem, CONFIG, rng=5)
        phases = [e for e in recorder.events if e["type"] == "phase"]
        assert phases
        assert all("solve_seconds" in e for e in phases)
        assert all(e["solve_seconds"] >= 0.0 for e in phases)

    def test_timings_false_strips_solve_seconds(self):
        problem = random_problem(np.random.default_rng(3))
        recorder = obs.ListRecorder()
        with obs.recording(recorder, timings=False):
            solve_distributed(problem, CONFIG, rng=5)
        phases = [e for e in recorder.events if e["type"] == "phase"]
        assert phases
        assert all("solve_seconds" not in e for e in phases)

    def test_timings_flag_restored_after_recording(self):
        assert not obs.timings_enabled()  # no recorder active
        with obs.recording(obs.ListRecorder(), timings=False):
            assert not obs.timings_enabled()
            with obs.recording(obs.ListRecorder()):
                assert obs.timings_enabled()
            assert not obs.timings_enabled()
        assert not obs.timings_enabled()

    def test_jacobi_phases_carry_per_sbs_timings(self):
        problem = random_problem(np.random.default_rng(3))
        recorder = obs.ListRecorder()
        with obs.recording(recorder):
            solve_distributed(
                problem, DistributedConfig(max_iterations=3, mode="jacobi"), rng=5
            )
        phases = [e for e in recorder.events if e["type"] == "phase"]
        assert phases
        assert all("solve_seconds" in e for e in phases)
