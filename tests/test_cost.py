"""Tests for the cost functions f1, f2 and f (Eqs. 5-7)."""

import numpy as np
import pytest

from repro.core.cost import (
    LinearCostModel,
    bs_serving_cost,
    residual_fraction,
    sbs_serving_cost,
    served_fraction,
    total_cost,
)
from repro.exceptions import ValidationError


class TestZeroRouting:
    def test_f1_zero(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        assert sbs_serving_cost(tiny_problem, y) == 0.0

    def test_f2_equals_max_cost(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        assert bs_serving_cost(tiny_problem, y) == pytest.approx(tiny_problem.max_cost())

    def test_total_is_w(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        assert total_cost(tiny_problem, y) == pytest.approx(tiny_problem.max_cost())


class TestSingleCoordinate:
    def test_serving_one_unit(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        y[0, 0, 0] = 1.0  # SBS 0 serves all of group 0's demand for file 0
        # f1 gains d * lambda = 1 * 8; f2 loses d_hat * lambda = 100 * 8
        assert sbs_serving_cost(tiny_problem, y) == pytest.approx(8.0)
        expected_f2 = tiny_problem.max_cost() - 800.0
        assert bs_serving_cost(tiny_problem, y) == pytest.approx(expected_f2)
        saving = (100.0 - 1.0) * 8.0
        assert total_cost(tiny_problem, y) == pytest.approx(tiny_problem.max_cost() - saving)

    def test_disconnected_routing_is_ignored(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        y[0, 2, 0] = 1.0  # SBS 0 does not reach group 2
        assert sbs_serving_cost(tiny_problem, y) == 0.0
        assert total_cost(tiny_problem, y) == pytest.approx(tiny_problem.max_cost())


class TestMonotonicity:
    def test_cost_decreases_in_y(self, tiny_problem, rng):
        base = np.zeros(tiny_problem.shape)
        cost = total_cost(tiny_problem, base)
        for _ in range(20):
            n = rng.integers(tiny_problem.num_sbs)
            u = rng.integers(tiny_problem.num_groups)
            f = rng.integers(tiny_problem.num_files)
            if tiny_problem.connectivity[n, u] == 0:
                continue
            served = np.einsum("nuf,nu->uf", base, tiny_problem.connectivity)
            room = 1.0 - served[u, f]
            if room <= 0:
                continue
            base[n, u, f] += min(0.2, room)
            new_cost = total_cost(tiny_problem, base)
            assert new_cost <= cost + 1e-9
            cost = new_cost


class TestFractions:
    def test_served_fraction(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        y[0, 1, 0] = 0.4
        y[1, 1, 0] = 0.5
        served = served_fraction(tiny_problem, y)
        assert served[1, 0] == pytest.approx(0.9)

    def test_residual_clipping(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        y[0, 1, 0] = 0.8
        y[1, 1, 0] = 0.8  # over-served: 1.6 total
        clipped = residual_fraction(tiny_problem, y, clip=True)
        raw = residual_fraction(tiny_problem, y, clip=False)
        assert clipped[1, 0] == 0.0
        assert raw[1, 0] == pytest.approx(-0.6)

    def test_overserving_does_not_earn_negative_bs_cost(self, tiny_problem):
        y = np.zeros(tiny_problem.shape)
        y[0, 1, :] = 1.0
        y[1, 1, :] = 1.0
        assert bs_serving_cost(tiny_problem, y) >= 0.0

    def test_shape_mismatch_rejected(self, tiny_problem):
        with pytest.raises(ValidationError, match="shape"):
            total_cost(tiny_problem, np.zeros((1, 1, 1)))


class TestLinearCostModel:
    def test_total_matches_functions(self, tiny_problem, rng):
        model = LinearCostModel()
        y = rng.uniform(0.0, 0.3, size=tiny_problem.shape)
        assert model.total(tiny_problem, y) == pytest.approx(
            model.sbs_cost(tiny_problem, y) + model.bs_cost(tiny_problem, y)
        )

    def test_savings_complement(self, tiny_problem, rng):
        model = LinearCostModel()
        y = rng.uniform(0.0, 0.2, size=tiny_problem.shape)
        assert model.savings(tiny_problem, y) == pytest.approx(
            tiny_problem.max_cost() - model.total(tiny_problem, y)
        )

    def test_unclipped_model(self, tiny_problem):
        model = LinearCostModel(clip_residual=False)
        y = np.zeros(tiny_problem.shape)
        y[0, 1, 0] = 1.0
        y[1, 1, 0] = 1.0
        clipped = LinearCostModel().total(tiny_problem, y)
        assert model.total(tiny_problem, y) < clipped
