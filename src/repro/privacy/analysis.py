"""Utility analysis of LPPM — Theorem 5 and empirical counterparts.

Theorem 5 bounds the expected cost increase caused by the mechanism:

``E[f(y_hat) - f(y*)] <= Phi(zeta) * P_r + W * (1 - P_r)``

where ``P_r = P(|y - y_hat|_1 <= zeta)`` is computed from the
distribution of the *total* disturbance ``sum r[n, u, f]`` (a
convolution of independent bounded-Laplace variables), ``Phi(zeta)`` is
a Lipschitz bound on the cost change under an L1 perturbation of size
``zeta``, and ``W`` is the worst-case cost (BS serves everything).

The convolution is evaluated exactly via the closed-form characteristic
function of the bounded Laplace distribution (product over coordinates,
inverse FFT), with a vectorized Monte Carlo estimator as cross-check.
"""

from __future__ import annotations

import dataclasses
from typing import Tuple, Union

import numpy as np

from .._validation import rng_from, trapezoid
from ..core.cost import total_cost
from ..core.problem import ProblemInstance
from ..exceptions import PrivacyError, ValidationError
from .laplace import BoundedLaplace, bounded_laplace_normalizer
from .mechanism import LPPMConfig

__all__ = [
    "NoiseDistribution",
    "total_noise_distribution",
    "sample_total_noise",
    "lipschitz_cost_bound",
    "theorem5_bound",
    "empirical_cost_increase",
    "Theorem5Bound",
]


@dataclasses.dataclass(frozen=True)
class NoiseDistribution:
    """Discretized density of the total disturbance ``sum r``.

    ``atom_at_zero`` carries any discrete probability mass at exactly
    zero (the degenerate case where every perturbation interval is
    empty); the continuous part lives in ``pdf`` over ``grid``.
    """

    grid: np.ndarray
    pdf: np.ndarray
    atom_at_zero: float = 0.0

    def cdf_at(self, value: float) -> float:
        """``P(sum r <= value)`` by trapezoidal integration."""
        if value < 0:
            return 0.0
        mask = self.grid <= value
        continuous = 0.0
        if np.count_nonzero(mask) >= 2:
            continuous = float(trapezoid(self.pdf[mask], self.grid[mask]))
        return float(np.clip(self.atom_at_zero + continuous, 0.0, 1.0))

    def mean(self) -> float:
        """Mean of the continuous part of the distribution."""
        return float(trapezoid(self.grid * self.pdf, self.grid))


def _characteristic_function(t: np.ndarray, beta: float, upper: float) -> np.ndarray:
    """Closed-form characteristic function of BoundedLaplace(beta, [0, b]).

    ``phi(t) = (1 / (2 beta alpha)) * (1 - exp(-b (1/beta - i t)))
    / (1/beta - i t)``.
    """
    alpha = float(bounded_laplace_normalizer(beta, 0.0, upper))
    if alpha <= 0:
        return np.ones_like(t, dtype=np.complex128)
    s = 1.0 / beta - 1j * t
    return (1.0 - np.exp(-upper * s)) / (2.0 * beta * alpha * s)


def total_noise_distribution(
    uppers: np.ndarray,
    beta: float,
    *,
    grid_points: int = 4096,
) -> NoiseDistribution:
    """Distribution of ``sum_i r_i`` with ``r_i ~ BoundedLaplace(beta, [0, b_i])``.

    Implements the convolution ``d(r) = (d_111 * ... * d_NUF)(r)`` of
    Theorem 5's proof in the Fourier domain: the characteristic function
    of the sum is the product of the coordinates' characteristic
    functions, inverted on a uniform grid over ``[0, sum b_i]``.
    Coordinates with ``b_i = 0`` contribute nothing and are skipped.
    """
    if beta <= 0:
        raise PrivacyError(f"beta must be positive, got {beta}")
    if grid_points < 8:
        raise ValidationError(f"grid_points must be at least 8, got {grid_points}")
    uppers = np.asarray(uppers, dtype=np.float64).ravel()
    if np.any(uppers < 0):
        raise PrivacyError("interval upper bounds must be nonnegative")
    uppers = uppers[uppers > 0]
    support = float(uppers.sum())
    if support <= 0:
        grid = np.linspace(0.0, 1.0, grid_points)
        return NoiseDistribution(grid=grid, pdf=np.zeros(grid_points), atom_at_zero=1.0)

    # Period must exceed the support to avoid wrap-around aliasing.
    period = support * 1.25 + 1e-9
    step = period / grid_points
    frequencies = 2.0 * np.pi * np.fft.fftfreq(grid_points, d=step)
    phi = np.ones(grid_points, dtype=np.complex128)
    for upper in uppers:
        phi *= _characteristic_function(frequencies, beta, float(upper))
    # Fourier-series inversion of the periodised density:
    # p(x_k) = (1/P) * sum_j phi(w_j) exp(-i w_j x_k), which is exactly
    # fft(phi)_k / P on the fftfreq ordering.
    density = np.real(np.fft.fft(phi)) / period
    density = np.maximum(density, 0.0)
    grid = np.arange(grid_points) * step
    mass = trapezoid(density, grid)
    if mass > 0:
        density = density / mass
    return NoiseDistribution(grid=grid, pdf=density)


def sample_total_noise(
    routing: np.ndarray,
    config: LPPMConfig,
    *,
    samples: int = 2000,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Monte Carlo draws of ``|y - y_hat|_1`` for a routing tensor."""
    generator = rng_from(rng)
    routing = np.asarray(routing, dtype=np.float64)
    upper = config.delta * np.clip(routing, 0.0, 1.0)
    positive = upper[upper > 0]
    if positive.size == 0:
        return np.zeros(samples)
    distribution = BoundedLaplace(config.beta, np.zeros_like(positive), positive)
    totals = np.empty(samples)
    for i in range(samples):
        totals[i] = float(distribution.sample(rng=generator).sum())
    return totals


def lipschitz_cost_bound(problem: ProblemInstance) -> float:
    """``Phi(zeta) / zeta``: Lipschitz constant of ``f`` in ``|y|_1``.

    Reducing one routing coordinate by ``t`` increases the cost by
    ``(d_hat[u] - d[n, u]) * lambda[u, f] * t``; the constant is the
    largest such coefficient over connected triples.
    """
    coefficients = problem.savings_rate()
    return float(coefficients.max(initial=0.0))


@dataclasses.dataclass(frozen=True)
class Theorem5Bound:
    """Evaluated right-hand side of Theorem 5."""

    zeta: float
    probability_within: float
    phi: float
    worst_case: float
    bound: float


def theorem5_bound(
    problem: ProblemInstance,
    routing: np.ndarray,
    config: LPPMConfig,
    zeta: float,
    *,
    grid_points: int = 4096,
) -> Theorem5Bound:
    """Evaluate ``Phi(zeta) P_r + W (1 - P_r)`` for a given ``zeta``.

    ``routing`` is the noiseless optimum ``y*`` whose coordinates define
    the perturbation intervals ``[0, delta * y]``.
    """
    if zeta < 0:
        raise ValidationError(f"zeta must be nonnegative, got {zeta}")
    uppers = config.delta * np.clip(np.asarray(routing, dtype=np.float64), 0.0, 1.0)
    distribution = total_noise_distribution(uppers.ravel(), config.beta, grid_points=grid_points)
    probability = distribution.cdf_at(zeta)
    phi = lipschitz_cost_bound(problem) * zeta
    worst = problem.max_cost()
    bound = phi * probability + worst * (1.0 - probability)
    return Theorem5Bound(
        zeta=float(zeta),
        probability_within=probability,
        phi=phi,
        worst_case=worst,
        bound=float(bound),
    )


def empirical_cost_increase(
    problem: ProblemInstance,
    routing: np.ndarray,
    config: LPPMConfig,
    *,
    samples: int = 100,
    rng: Union[int, np.random.Generator, None] = None,
) -> Tuple[float, float]:
    """Monte Carlo ``(mean, std)`` of ``f(y_hat) - f(y)`` under LPPM.

    Perturbs the final routing tensor directly (one release), which is
    the quantity Theorem 5 bounds.
    """
    from .mechanism import LaplacePrivacyMechanism

    generator = rng_from(rng)
    routing = np.asarray(routing, dtype=np.float64)
    base_cost = total_cost(problem, routing)
    increases = np.empty(samples)
    for i in range(samples):
        mechanism = LaplacePrivacyMechanism(config, rng=generator)
        perturbed = np.stack([mechanism.perturb(routing[n]) for n in range(routing.shape[0])])
        increases[i] = total_cost(problem, perturbed) - base_cost
    return float(increases.mean()), float(increases.std())
