"""Synthetic stand-in for the paper's real request trace (Fig. 2).

The paper recorded the number of reviews of the **top 50 trending
videos in 30 minutes** on a well-known streaming site (December 18,
2018): the most requested video has roughly 140,000 views while tail
videos have only a few thousand.  That trace is not public, so we
generate a deterministic heavy-tailed equivalent — a jittered Zipf curve
pinned to the same head value and floored at the same tail magnitude —
which exercises exactly the same code paths (the optimizers only consume
the demand matrix).  DESIGN.md documents this substitution.

Because the raw view counts (~10^6 total) dwarf any plausible SBS
bandwidth measured in "units at a time", :func:`scaled_demand` rescales
the trace so total demand is a chosen multiple of total SBS bandwidth.
The paper reports only *relative* cost gaps, which are preserved under
scaling (the objective is linear in demand).
"""

from __future__ import annotations

import dataclasses
from typing import Union

import numpy as np

from .._validation import check_positive_int, rng_from
from ..exceptions import ValidationError
from .zipf import zipf_counts

__all__ = ["TraceConfig", "VideoTrace", "trending_video_trace"]


@dataclasses.dataclass(frozen=True)
class TraceConfig:
    """Parameters of the synthetic trending-video trace.

    Defaults match the paper's description of Fig. 2: 50 videos, head at
    ~140k views, tail floored at a few thousand, visibly noisy curve.
    """

    num_videos: int = 50
    head_views: float = 140_000.0
    tail_views: float = 2_000.0
    zipf_exponent: float = 1.1
    jitter: float = 0.25
    window_minutes: float = 30.0
    seed: int = 20181218  # the recording date used as default seed

    def __post_init__(self) -> None:
        check_positive_int(self.num_videos, "num_videos")
        if self.head_views <= 0 or self.tail_views <= 0:
            raise ValidationError("head_views and tail_views must be positive")
        if self.tail_views > self.head_views:
            raise ValidationError("tail_views cannot exceed head_views")
        if self.window_minutes <= 0:
            raise ValidationError("window_minutes must be positive")


@dataclasses.dataclass(frozen=True)
class VideoTrace:
    """View counts of trending videos over the recording window."""

    views: np.ndarray  # (F,), sorted most-viewed first
    window_minutes: float

    def __post_init__(self) -> None:
        views = np.asarray(self.views, dtype=np.float64)
        if views.ndim != 1 or views.size == 0:
            raise ValidationError("views must be a nonempty 1-D vector")
        if np.any(views < 0):
            raise ValidationError("views must be nonnegative")
        views.setflags(write=False)
        object.__setattr__(self, "views", views)

    @property
    def num_videos(self) -> int:
        return self.views.size

    def total_views(self) -> float:
        """Total view count over all videos."""
        return float(self.views.sum())

    def top(self, k: int) -> np.ndarray:
        """The ``k`` most-viewed counts (Fig. 2 plots the first 20)."""
        if not 0 < k <= self.num_videos:
            raise ValidationError(f"k must lie in [1, {self.num_videos}], got {k}")
        return self.views[:k]

    def request_rates(self) -> np.ndarray:
        """Mean arrival rates (requests per minute) per video."""
        return self.views / self.window_minutes

    def scaled_demand(self, target_total: float) -> np.ndarray:
        """Rescale counts so they sum to ``target_total`` (shape kept)."""
        if target_total <= 0:
            raise ValidationError(f"target_total must be positive, got {target_total}")
        return self.views * (target_total / self.total_views())


def trending_video_trace(
    config: TraceConfig = TraceConfig(),
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> VideoTrace:
    """Generate the synthetic Fig. 2 trace.

    Deterministic for a given config (the default seed encodes the
    paper's recording date); pass ``rng`` to explore other draws.
    """
    generator = rng_from(config.seed if rng is None else rng)
    counts = zipf_counts(
        config.num_videos,
        exponent=config.zipf_exponent,
        head_count=config.head_views,
        jitter=config.jitter,
        rng=generator,
    )
    # Floor the tail at the configured magnitude ("a few thousands").
    counts = np.maximum(counts, config.tail_views)
    counts = np.sort(counts)[::-1]
    return VideoTrace(views=counts, window_minutes=config.window_minutes)
