#!/usr/bin/env python3
"""Run tracing: record, summarize and cross-validate Algorithm 1.

Every claim the repo makes about a run — the convergence curve of
Theorem 2, the epsilon the accountant booked, the retries the ARQ
layer burned — lives in the run's trajectory, not just its final
number.  This demo records two Algorithm 1 executions (clean and
privacy-preserving) as JSONL event streams with :mod:`repro.obs`,
then does everything ``repro-trace`` does, in-process:

* **summary** — reconstruct the per-iteration cost curve, the
  duality-gap trajectory and the per-party epsilon ledger purely from
  the event stream;
* **validate** — cross-check the reconstruction against the outcome
  the solver reported (they must agree exactly, down to float bits);
* **diff** — compare the clean run against the private one and show
  where the trajectories part ways.

Run:  python examples/trace_demo.py
"""

from repro import obs
from repro.core.distributed import DistributedConfig, solve_distributed
from repro.experiments.config import ScenarioConfig, build_problem
from repro.obs import TraceReader, diff_traces, summarize_trace, validate_events
from repro.privacy.mechanism import LPPMConfig

CONFIG = DistributedConfig(accuracy=1e-4, max_iterations=8)


def main() -> None:
    scenario = ScenarioConfig(num_groups=15, num_links=22)
    problem = build_problem(scenario)

    print("=== recording a clean run ===")
    with obs.recording("trace_clean.jsonl"):
        clean = solve_distributed(problem, CONFIG, rng=1)
    print(f"final cost {clean.cost:,.1f} in {clean.iterations} iterations\n")

    print("=== recording a private run (LPPM, eps=1.0 per release) ===")
    with obs.recording("trace_private.jsonl"):
        private = solve_distributed(
            problem, CONFIG, privacy=LPPMConfig(epsilon=1.0), rng=1
        )
    print(
        f"final cost {private.cost:,.1f}, "
        f"booked epsilon {private.total_epsilon}\n"
    )

    for label, path in (("clean", "trace_clean.jsonl"), ("private", "trace_private.jsonl")):
        events = TraceReader(path).events
        issues = validate_events(events)
        print(f"=== {label}: {len(events)} events, validate -> "
              f"{'OK' if not issues else issues} ===")
        for summary in summarize_trace(events):
            print(summary.render())
        print()

    print("=== diff clean vs private ===")
    differences = diff_traces(
        TraceReader("trace_clean.jsonl").events,
        TraceReader("trace_private.jsonl").events,
    )
    for difference in differences:
        print(f"  {difference}")
    if not differences:
        print("  (identical — unexpected for a noisy mechanism!)")


if __name__ == "__main__":
    main()
