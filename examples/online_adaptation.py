#!/usr/bin/env python3
"""Online adaptation: re-optimizing as trending content churns.

The Fig. 2 workload is a snapshot of *trending* videos — a population
that churns hour by hour.  This example evolves the demand over 12 time
slots (drift + viral events) and compares:

* **static** — solve once, keep the caches forever;
* **adaptive** — re-run the distributed algorithm every slot, paying a
  switching cost per newly cached content;
* **lazy adaptive** — re-optimize every 3 slots (cheaper switching,
  staler caches);
* **private adaptive** — adaptive with LPPM, showing how the privacy
  budget accumulates across slots (composition!).

Run:  python examples/online_adaptation.py
"""


from repro.core import DistributedConfig, OnlineConfig, simulate_online
from repro.experiments.config import ScenarioConfig, build_problem
from repro.privacy import LPPMConfig
from repro.workload import DynamicsConfig, demand_sequence
from repro.workload.trace import TraceConfig

SLOTS = 12
SWITCH_COST = 150.0  # backhaul cost of fetching one content into a cache


def main() -> None:
    scenario = ScenarioConfig(
        num_groups=15,
        num_links=22,
        bandwidth=300.0,
        cache_capacity=5,
        trace=TraceConfig(num_videos=25, head_views=30_000.0, tail_views=800.0),
        demand_to_bandwidth=3.0,
    )
    problem = build_problem(scenario)
    dynamics = DynamicsConfig(
        drift=0.35, viral_probability=0.4, viral_boost=8.0, decay=0.7
    )
    slots = demand_sequence(problem.demand, SLOTS, dynamics, rng=1)
    print(
        f"Workload: {SLOTS} slots, volume {problem.total_demand():,.0f}/slot, "
        f"drift {dynamics.drift}, viral p={dynamics.viral_probability}"
    )

    fast = DistributedConfig(accuracy=1e-3, max_iterations=6)
    policies = {
        "static (solve once)": dict(
            config=OnlineConfig(switch_cost=SWITCH_COST, distributed=fast),
            adaptive=False,
        ),
        "adaptive (every slot)": dict(
            config=OnlineConfig(switch_cost=SWITCH_COST, distributed=fast),
            adaptive=True,
        ),
        "lazy adaptive (every 3)": dict(
            config=OnlineConfig(
                switch_cost=SWITCH_COST, reoptimize_every=3, distributed=fast
            ),
            adaptive=True,
        ),
        "private adaptive (eps=0.1/upload)": dict(
            config=OnlineConfig(
                switch_cost=SWITCH_COST,
                distributed=fast,
                privacy=LPPMConfig(epsilon=0.1),
            ),
            adaptive=True,
        ),
    }

    print(
        f"\n{'policy':34} | {'serving':>12} | {'switching':>10} | "
        f"{'total':>12} | {'eps spent':>9}"
    )
    print("-" * 90)
    for label, kwargs in policies.items():
        result = simulate_online(
            problem, slots, kwargs["config"], adaptive=kwargs["adaptive"], rng=7
        )
        serving = float(result.serving_costs().sum())
        switching = result.total_cost() - serving
        print(
            f"{label:34} | {serving:>12,.0f} | {switching:>10,.0f} | "
            f"{result.total_cost():>12,.0f} | {result.epsilon_spent:>9.1f}"
        )

    print(
        "\nAdaptation pays when the workload churns faster than the "
        "switching cost amortises; the lazy policy is the usual sweet "
        "spot.  Note how the private policy's budget grows linearly with "
        "re-optimizations — in a deployment the accountant would force a "
        "larger per-release epsilon or rarer re-optimization."
    )


if __name__ == "__main__":
    main()
