"""Wire codec tests: framing, CRC detection, header peeking, limits."""

import struct

import numpy as np
import pytest

from repro.exceptions import FrameError
from repro.network.messaging import MAX_PAYLOAD_BYTES, Message, MessageKind
from repro.runtime import (
    Frame,
    decode_frame,
    encode_frame,
    frame_from_message,
    peek_header,
)


def _array_frame(**overrides):
    fields = dict(
        kind=MessageKind.POLICY_UPLOAD,
        sender="sbs-0",
        recipient="bs",
        iteration=3,
        phase=1,
        seq=7,
        array=np.arange(12.0).reshape(3, 4),
    )
    fields.update(overrides)
    return Frame(**fields)


class TestRoundTrip:
    def test_array_frame_round_trips_exactly(self):
        frame = _array_frame()
        decoded = decode_frame(encode_frame(frame))
        assert decoded.kind is MessageKind.POLICY_UPLOAD
        assert (decoded.sender, decoded.recipient) == ("sbs-0", "bs")
        assert (decoded.iteration, decoded.phase, decoded.seq) == (3, 1, 7)
        assert decoded.array.dtype == np.float64
        np.testing.assert_array_equal(decoded.array, frame.array)
        assert decoded.meta is None

    def test_1d_shape_survives(self):
        payload = np.array([1.0, 2.0, 3.0])
        decoded = decode_frame(encode_frame(_array_frame(array=payload)))
        assert decoded.array.shape == payload.shape
        np.testing.assert_array_equal(decoded.array, payload)

    def test_0d_scalar_decodes_as_length_one_vector(self):
        # Protocol payloads are always >= 1-d (acks are shape (1,)); a
        # 0-d scalar flattens to (1,) on the wire rather than erroring.
        decoded = decode_frame(encode_frame(_array_frame(array=np.array(5.0))))
        assert decoded.array.shape == (1,)
        assert decoded.array[0] == 5.0

    def test_json_frame_round_trips_floats_exactly(self):
        # repr-based shortest round-trip: float64 values survive the hop.
        meta = {
            "action": "phase_done",
            "noise_l1": 0.1 + 0.2,
            "stats": {"dual_gap": 1e-17, "mu_norm": 3.141592653589793},
            "delivered": True,
        }
        frame = _array_frame(array=None, meta=meta, kind=MessageKind.CONTROL)
        decoded = decode_frame(encode_frame(frame))
        assert decoded.meta == meta
        assert decoded.meta["noise_l1"] == 0.1 + 0.2
        assert decoded.array is None

    def test_message_round_trip(self):
        message = Message(
            kind=MessageKind.ACK,
            sender="bs",
            recipient="sbs-2",
            payload=np.array([4.0]),
            iteration=2,
            phase=0,
            seq=4,
        )
        back = decode_frame(encode_frame(frame_from_message(message))).to_message()
        assert back.kind is MessageKind.ACK
        assert (back.sender, back.recipient, back.seq) == ("bs", "sbs-2", 4)
        np.testing.assert_array_equal(back.payload, message.payload)

    def test_json_frame_has_no_message_equivalent(self):
        frame = _array_frame(array=None, meta={"action": "hello"})
        with pytest.raises(FrameError, match="no Message equivalent"):
            frame.to_message()


class TestCorruptionDetection:
    def test_flipped_payload_byte_fails_crc(self):
        raw = bytearray(encode_frame(_array_frame()))
        raw[-10] ^= 0xFF  # inside the payload, before the CRC
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(raw))

    def test_truncated_frame_rejected(self):
        raw = encode_frame(_array_frame())
        with pytest.raises(FrameError):
            decode_frame(raw[: len(raw) // 2])

    def test_bad_magic_rejected(self):
        raw = bytearray(encode_frame(_array_frame()))
        raw[0:4] = b"XXXX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(raw))

    def test_unknown_version_rejected(self):
        raw = bytearray(encode_frame(_array_frame()))
        raw[4] = 99
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(raw))

    def test_unknown_kind_code_rejected(self):
        raw = bytearray(encode_frame(_array_frame()))
        raw[5] = 99  # kind byte; re-sign the CRC so only the kind is bad
        body = bytes(raw[:-4])
        import zlib

        signed = body + struct.pack("<I", zlib.crc32(body))
        with pytest.raises(FrameError, match="kind"):
            decode_frame(signed)


class TestPeekHeader:
    def test_routing_fields_without_full_decode(self):
        header = peek_header(encode_frame(_array_frame()))
        assert header.kind is MessageKind.POLICY_UPLOAD
        assert (header.iteration, header.phase, header.seq) == (3, 1, 7)
        assert (header.sender, header.recipient) == ("sbs-0", "bs")

    def test_peek_ignores_payload_corruption(self):
        # The proxy routes on the header even when the payload is damaged.
        raw = bytearray(encode_frame(_array_frame()))
        raw[-6] ^= 0xFF
        header = peek_header(bytes(raw))
        assert header.sender == "sbs-0"


class TestEncodeLimits:
    def test_exactly_one_payload_flavour(self):
        with pytest.raises(FrameError, match="exactly one"):
            _array_frame(meta={"also": 1})
        with pytest.raises(FrameError, match="exactly one"):
            _array_frame(array=None, meta=None)

    def test_zero_length_payload_rejected(self):
        with pytest.raises(FrameError, match="zero-length"):
            encode_frame(_array_frame(array=np.zeros((0,))))

    def test_oversized_payload_rejected(self):
        huge = np.zeros(MAX_PAYLOAD_BYTES // 8 + 1)
        with pytest.raises(FrameError, match="exceeding"):
            encode_frame(_array_frame(array=huge))

    def test_non_numeric_payload_rejected(self):
        with pytest.raises(FrameError, match="not numeric"):
            encode_frame(_array_frame(array=np.array(["a", "b"], dtype=object)))

    def test_empty_and_oversized_names_rejected(self):
        with pytest.raises(FrameError, match="node names"):
            encode_frame(_array_frame(sender=""))
        with pytest.raises(FrameError, match="node names"):
            encode_frame(_array_frame(recipient="x" * 256))
