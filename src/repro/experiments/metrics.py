"""Operational metrics of a caching/routing solution.

The paper reports one number per scheme (total serving cost); a network
operator evaluating the system would look at more.  These metrics are
used by the examples and the validation report:

* **offload ratio** — fraction of demand served at the edge (the
  business value of the whole exercise);
* **bandwidth utilization** — per-SBS and mean radio-link load;
* **cache diversity** — distinct contents cached network-wide vs total
  slots, and the duplication profile across operators;
* **Jain fairness** — across SBSs' realized savings, relevant when the
  SBSs belong to competing operators that each expect a return;
* **per-operator savings** — each SBS's contribution to the cost
  reduction (its traffic times its margins).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Tuple

import numpy as np

from ..core.cost import total_cost
from ..core.problem import ProblemInstance
from ..core.solution import Solution
from ..exceptions import ValidationError

__all__ = ["SolutionMetrics", "compute_metrics", "jain_fairness"]


def jain_fairness(values) -> float:
    """Jain's fairness index: ``(sum x)^2 / (n * sum x^2)`` in ``(0, 1]``.

    1 means perfectly equal shares; ``1/n`` means one party takes all.
    A zero vector is defined as perfectly fair (nothing to share).
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValidationError("values must be nonempty")
    if np.any(values < 0):
        raise ValidationError("Jain fairness is defined for nonnegative values")
    total = values.sum()
    if total <= 0:
        return 1.0
    return float(total**2 / (values.size * np.sum(values**2)))


@dataclasses.dataclass(frozen=True)
class SolutionMetrics:
    """Operational summary of one solution."""

    cost: float
    savings: float
    offload_ratio: float
    bandwidth_utilization: Tuple[float, ...]
    mean_utilization: float
    distinct_contents_cached: int
    cache_slots_used: int
    duplication_ratio: float
    per_sbs_savings: Tuple[float, ...]
    savings_fairness: float

    def as_dict(self) -> Dict[str, float]:
        """Scalar metrics as a flat dictionary (for logging)."""
        return {
            "cost": self.cost,
            "savings": self.savings,
            "offload_ratio": self.offload_ratio,
            "mean_utilization": self.mean_utilization,
            "distinct_contents_cached": float(self.distinct_contents_cached),
            "cache_slots_used": float(self.cache_slots_used),
            "duplication_ratio": self.duplication_ratio,
            "savings_fairness": self.savings_fairness,
        }


def compute_metrics(problem: ProblemInstance, solution: Solution) -> SolutionMetrics:
    """Compute every operational metric for a solution."""
    routing = solution.routing
    cost = total_cost(problem, routing)
    savings = problem.max_cost() - cost

    total_demand = problem.total_demand()
    offloaded = solution.offloaded_traffic(problem)
    offload_ratio = offloaded / total_demand if total_demand > 0 else 0.0

    usage = solution.bandwidth_usage(problem)
    with np.errstate(divide="ignore", invalid="ignore"):
        utilization = np.where(problem.bandwidth > 0, usage / problem.bandwidth, 0.0)

    caching = solution.caching
    slots_used = int(caching.sum())
    distinct = int(np.count_nonzero(caching.sum(axis=0) > 0))
    duplication = 1.0 - distinct / slots_used if slots_used > 0 else 0.0

    # Each SBS's savings: its served volume weighted by its margins.
    margin = problem.savings_margin()  # (N, U)
    per_sbs = tuple(
        float(np.einsum("uf,u->", routing[n] * problem.demand, margin[n]))
        for n in range(problem.num_sbs)
    )

    return SolutionMetrics(
        cost=cost,
        savings=savings,
        offload_ratio=float(offload_ratio),
        bandwidth_utilization=tuple(float(u) for u in utilization),
        mean_utilization=float(np.mean(utilization)),
        distinct_contents_cached=distinct,
        cache_slots_used=slots_used,
        duplication_ratio=float(duplication),
        per_sbs_savings=per_sbs,
        savings_fairness=jain_fairness(per_sbs),
    )
