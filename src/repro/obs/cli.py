"""Command-line entry point: ``repro-trace <subcommand> <trace.jsonl>``.

Three subcommands over JSONL run traces written by
:class:`repro.obs.TraceWriter`::

    repro-trace summary run.jsonl            # reconstruct curve + ledger
    repro-trace summary run.jsonl --format json   # machine-readable
    repro-trace validate run.jsonl           # structural + semantic checks
    repro-trace diff a.jsonl b.jsonl         # compare two traces
    repro-trace diff a.jsonl b.jsonl --tolerance 1e-9

``summary`` prints, per run, the convergence curve, the per-party
epsilon ledger and the protocol counters reconstructed from the event
stream, next to the solver-reported outcome.  ``validate`` exits
nonzero when the trace is malformed or the reconstruction disagrees
with the report — the CI trace-smoke job gates on it.  ``diff`` exits
nonzero when the two traces differ beyond the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from ..exceptions import ValidationError
from .trace import TraceReader, diff_traces, summarize_trace, validate_events

__all__ = ["main"]


def _load(path: str) -> TraceReader:
    try:
        return TraceReader(path)
    except OSError as error:
        raise SystemExit(f"repro-trace: cannot read {path}: {error}")
    except ValidationError as error:
        raise SystemExit(f"repro-trace: {error}")


def _cmd_summary(args: argparse.Namespace) -> int:
    reader = _load(args.trace)
    summaries = summarize_trace(reader.events)
    if not summaries:
        print("no runs recorded in trace")
        return 1
    if args.json or args.format == "json":
        payload = [
            {
                "run": summary.run,
                "iterations": summary.iterations,
                "converged": summary.converged,
                "final_cost": summary.final_cost,
                "reported_final_cost": summary.reported_final_cost,
                "convergence_curve": summary.convergence_curve,
                "epsilon_by_party": summary.epsilon_by_party,
                "total_epsilon": summary.total_epsilon,
                "reported_total_epsilon": summary.reported_total_epsilon,
                "releases": summary.releases,
                "phases": summary.phases,
                "retries": summary.retries,
                "stale_phases": summary.stale_phases,
                "protocol_counts": summary.protocol_counts,
                "dual_gap_final": summary.dual_gap_final,
            }
            for summary in summaries
        ]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for summary in summaries:
            print(summary.render())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    reader = _load(args.trace)
    issues = validate_events(reader.events)
    if issues:
        for issue in issues:
            print(f"INVALID: {issue}")
        print(f"{len(issues)} issue(s) found in {args.trace}")
        return 1
    print(
        f"OK: {args.trace} — {len(reader.events)} events, "
        "reconstruction matches the reported outcome"
    )
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    left = _load(args.trace)
    right = _load(args.other)
    differences = diff_traces(left.events, right.events, tolerance=args.tolerance)
    if differences:
        for difference in differences:
            print(f"DIFF: {difference}")
        return 1
    print("traces agree")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Inspect JSONL run traces of the distributed caching solvers.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    summary = subparsers.add_parser(
        "summary", help="reconstruct the convergence curve and epsilon ledger"
    )
    summary.add_argument("trace", help="path to a JSONL trace")
    summary.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output encoding (default: text)",
    )
    summary.add_argument(
        "--json",
        action="store_true",
        help="alias for --format json (kept for compatibility)",
    )
    summary.set_defaults(handler=_cmd_summary)

    validate = subparsers.add_parser(
        "validate", help="check structure and cross-check against the reported outcome"
    )
    validate.add_argument("trace", help="path to a JSONL trace")
    validate.set_defaults(handler=_cmd_validate)

    diff = subparsers.add_parser("diff", help="compare two traces run by run")
    diff.add_argument("trace", help="baseline trace")
    diff.add_argument("other", help="candidate trace")
    diff.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        metavar="X",
        help="maximum |cost delta| still considered equal (default: exact)",
    )
    diff.set_defaults(handler=_cmd_diff)

    args = parser.parse_args(argv)
    result: int = args.handler(args)
    return result


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
