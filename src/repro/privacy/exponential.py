"""Exponential mechanism and private cache selection.

The exponential mechanism (McSherry & Talwar 2007) privately selects a
*discrete* outcome with probability proportional to
``exp(epsilon * score / (2 * Delta))``; it is the third standard DP
primitive the paper names next to Laplace and Gaussian.

Here it protects the *caching policy* — the other sensitive artifact of
Section I.  The paper assumes the caching policy never leaves the SBS;
if an operator must nevertheless publish or synchronise it (e.g. to a
CDN control plane), :func:`private_cache_selection` draws a cache set of
size ``C_n`` whose utility is close to the greedy optimum while being
differentially private with respect to the per-file demand scores.
Selection without replacement spends the budget evenly across draws
(basic composition over the ``C_n`` picks).
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from .._validation import ArrayLike, rng_from
from ..core.problem import ProblemInstance
from ..exceptions import PrivacyError, ValidationError

__all__ = ["exponential_mechanism", "private_cache_selection"]


def exponential_mechanism(
    scores: ArrayLike,
    epsilon: float,
    sensitivity: float = 1.0,
    *,
    rng: Union[int, np.random.Generator, None] = None,
) -> int:
    """Sample one index with probability ``∝ exp(eps * score / (2 Delta))``.

    Scores are shifted by their maximum before exponentiation for
    numerical stability (the mechanism is shift-invariant).
    """
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.size == 0:
        raise ValidationError("scores must be nonempty")
    if not np.all(np.isfinite(scores)):
        raise ValidationError("scores must be finite")
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if sensitivity <= 0:
        raise PrivacyError(f"sensitivity must be positive, got {sensitivity}")
    generator = rng_from(rng)
    logits = epsilon * (scores - scores.max()) / (2.0 * sensitivity)
    weights = np.exp(logits)
    probabilities = weights / weights.sum()
    return int(generator.choice(scores.size, p=probabilities))


def private_cache_selection(
    problem: ProblemInstance,
    sbs: int,
    epsilon: float,
    *,
    sensitivity: Optional[float] = None,
    rng: Union[int, np.random.Generator, None] = None,
) -> np.ndarray:
    """Differentially private cache set for one SBS.

    Scores each file by its margin-weighted connected demand (the same
    local value the greedy baseline uses) and draws ``C_n`` files
    without replacement via the exponential mechanism, splitting the
    budget evenly across draws.  ``sensitivity`` defaults to the largest
    single-group contribution to any file's score — the change one MU
    group's demand row can make.

    Returns a binary ``(F,)`` caching vector; with ``epsilon -> inf`` it
    converges to the greedy top-``C_n`` choice, with ``epsilon -> 0`` to
    a uniform random cache.
    """
    problem._check_sbs(sbs)
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    generator = rng_from(rng)
    value = problem.savings_rate()[sbs].sum(axis=0)  # (F,)
    if sensitivity is None:
        per_group = problem.savings_rate()[sbs]  # (U, F)
        sensitivity = float(per_group.max(initial=0.0))
        if sensitivity <= 0:
            sensitivity = 1.0
    capacity = int(np.floor(problem.cache_capacity[sbs] + 1e-9))
    capacity = min(capacity, problem.num_files)
    caching = np.zeros(problem.num_files)
    if capacity == 0:
        return caching
    per_draw_epsilon = epsilon / capacity
    available = list(range(problem.num_files))
    for _ in range(capacity):
        index = exponential_mechanism(
            value[available], per_draw_epsilon, sensitivity, rng=generator
        )
        chosen = available.pop(index)
        caching[chosen] = 1.0
    return caching
