"""Tests for the Solution container and feasibility checking."""

import numpy as np
import pytest

from repro.core.solution import Solution
from repro.exceptions import ValidationError


def feasible_solution(problem):
    caching = np.zeros((problem.num_sbs, problem.num_files))
    caching[:, 0] = 1.0
    routing = np.zeros(problem.shape)
    routing[0, 0, 0] = 0.5
    return Solution(caching=caching, routing=routing)


class TestConstruction:
    def test_zeros_feasible(self, tiny_problem):
        solution = Solution.zeros(tiny_problem)
        assert solution.is_feasible(tiny_problem)

    def test_shape_consistency_enforced(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            Solution(caching=np.zeros((2, 3)), routing=np.zeros((2, 4, 5)))

    def test_arrays_read_only(self, tiny_problem):
        solution = Solution.zeros(tiny_problem)
        with pytest.raises(ValueError):
            solution.routing[0, 0, 0] = 1.0

    def test_cost_of_zeros_is_w(self, tiny_problem):
        assert Solution.zeros(tiny_problem).cost(tiny_problem) == pytest.approx(
            tiny_problem.max_cost()
        )


class TestFeasibility:
    def test_feasible_example(self, tiny_problem):
        solution = feasible_solution(tiny_problem)
        report = solution.check_feasibility(tiny_problem)
        assert report.feasible
        assert report.worst() is None

    def test_integrality_violation(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[0, 0] = 0.5
        solution = Solution(caching=caching, routing=np.zeros(tiny_problem.shape))
        report = solution.check_feasibility(tiny_problem)
        assert not report.feasible
        assert "integrality(8)" in report.by_constraint()

    def test_capacity_violation(self, tiny_problem):
        caching = np.ones((2, 4))  # capacity is 2 per SBS
        solution = Solution(caching=caching, routing=np.zeros(tiny_problem.shape))
        report = solution.check_feasibility(tiny_problem)
        assert "cache_capacity(1)" in report.by_constraint()

    def test_coupling_violation(self, tiny_problem):
        routing = np.zeros(tiny_problem.shape)
        routing[0, 0, 0] = 0.5  # file 0 not cached
        solution = Solution(caching=np.zeros((2, 4)), routing=routing)
        report = solution.check_feasibility(tiny_problem)
        assert "cache_coupling(2)" in report.by_constraint()

    def test_bandwidth_violation(self, tiny_problem):
        caching = np.ones((2, 4)) * 0
        caching[0, :2] = 1.0
        routing = np.zeros(tiny_problem.shape)
        routing[0, 0, 0] = 1.0  # 8 units
        routing[0, 1, 0] = 1.0  # 6 units -> 14 > 10
        solution = Solution(caching=caching, routing=routing)
        report = solution.check_feasibility(tiny_problem)
        assert "bandwidth(3)" in report.by_constraint()

    def test_unit_demand_violation(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[:, 0] = 1.0
        routing = np.zeros(tiny_problem.shape)
        routing[0, 1, 0] = 0.7
        routing[1, 1, 0] = 0.7  # group 1 served 1.4 times
        solution = Solution(caching=caching, routing=routing)
        report = solution.check_feasibility(tiny_problem)
        assert "unit_demand(4)" in report.by_constraint()

    def test_locality_violation(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[0, 0] = 1.0
        routing = np.zeros(tiny_problem.shape)
        routing[0, 2, 0] = 0.5  # SBS 0 does not reach group 2
        solution = Solution(caching=caching, routing=routing)
        report = solution.check_feasibility(tiny_problem)
        assert "locality" in report.by_constraint()

    def test_box_violation(self, tiny_problem):
        caching = np.zeros((2, 4))
        caching[0, 0] = 1.0
        routing = np.zeros(tiny_problem.shape)
        routing[0, 0, 0] = 1.2
        solution = Solution(caching=caching, routing=routing)
        report = solution.check_feasibility(tiny_problem)
        assert "box_high(9)" in report.by_constraint()

    def test_raise_if_infeasible(self, tiny_problem):
        caching = np.ones((2, 4))
        solution = Solution(caching=caching, routing=np.zeros(tiny_problem.shape))
        with pytest.raises(ValidationError, match="infeasible"):
            solution.check_feasibility(tiny_problem).raise_if_infeasible()

    def test_wrong_problem_shape(self, tiny_problem):
        solution = Solution(caching=np.zeros((3, 4)), routing=np.zeros((3, 3, 4)))
        with pytest.raises(ValidationError):
            solution.check_feasibility(tiny_problem)


class TestMetrics:
    def test_cache_occupancy(self, tiny_problem):
        solution = feasible_solution(tiny_problem)
        np.testing.assert_allclose(solution.cache_occupancy(), [1.0, 1.0])

    def test_bandwidth_usage(self, tiny_problem):
        solution = feasible_solution(tiny_problem)
        usage = solution.bandwidth_usage(tiny_problem)
        assert usage[0] == pytest.approx(0.5 * 8.0)
        assert usage[1] == 0.0

    def test_offloaded_traffic(self, tiny_problem):
        solution = feasible_solution(tiny_problem)
        assert solution.offloaded_traffic(tiny_problem) == pytest.approx(4.0)


class TestRepair:
    def test_repair_fixes_everything(self, tiny_problem, rng):
        caching = rng.uniform(size=(2, 4))
        routing = rng.uniform(-0.2, 1.4, size=tiny_problem.shape)
        repaired = Solution(caching=caching, routing=routing).repaired(tiny_problem)
        assert repaired.is_feasible(tiny_problem)

    def test_repair_idempotent_on_feasible(self, tiny_problem):
        solution = feasible_solution(tiny_problem)
        repaired = solution.repaired(tiny_problem)
        np.testing.assert_allclose(repaired.caching, solution.caching)
        np.testing.assert_allclose(repaired.routing, solution.routing)

    def test_repair_respects_capacity(self, tiny_problem):
        caching = np.ones((2, 4))
        solution = Solution(caching=caching, routing=np.zeros(tiny_problem.shape))
        repaired = solution.repaired(tiny_problem)
        assert repaired.cache_occupancy().max() <= 2.0

    def test_repair_many_random(self, tiny_problem, rng):
        for _ in range(20):
            caching = rng.uniform(size=(2, 4))
            routing = rng.uniform(0, 2.0, size=tiny_problem.shape)
            repaired = Solution(caching=caching, routing=routing).repaired(tiny_problem)
            assert repaired.is_feasible(tiny_problem)
