"""Tests for the bounded Gaussian mechanism (the paper's future work)."""

import numpy as np
import pytest

from repro.exceptions import PrivacyError
from repro.privacy.factory import build_mechanism
from repro.privacy.gaussian import (
    BoundedGaussian,
    GaussianPPMConfig,
    GaussianPrivacyMechanism,
    gaussian_sigma,
)
from repro.privacy.mechanism import LaplacePrivacyMechanism, LPPMConfig


class TestSigmaCalibration:
    def test_formula(self):
        expected = 1.0 * np.sqrt(2.0 * np.log(1.25 / 1e-6)) / 0.5
        assert gaussian_sigma(1.0, 0.5, 1e-6) == pytest.approx(expected)

    def test_monotone_in_epsilon(self):
        assert gaussian_sigma(1.0, 0.01, 1e-6) > gaussian_sigma(1.0, 1.0, 1e-6)

    def test_invalid(self):
        with pytest.raises(PrivacyError):
            gaussian_sigma(0.0, 1.0, 1e-6)
        with pytest.raises(PrivacyError):
            gaussian_sigma(1.0, 0.0, 1e-6)
        with pytest.raises(PrivacyError):
            gaussian_sigma(1.0, 1.0, 2.0)


class TestBoundedGaussian:
    def test_pdf_zero_outside(self):
        dist = BoundedGaussian(1.0, 0.0, 0.5)
        assert dist.pdf(-0.1) == 0.0
        assert dist.pdf(0.6) == 0.0
        assert dist.pdf(0.2) > 0.0

    def test_pdf_integrates_to_one(self):
        dist = BoundedGaussian(0.4, 0.0, 0.8)
        grid = np.linspace(0.0, 0.8, 4001)
        assert np.trapezoid(dist.pdf(grid), grid) == pytest.approx(1.0, abs=1e-3)

    def test_cdf_endpoints(self):
        dist = BoundedGaussian(0.5, 0.0, 1.0)
        assert float(dist.cdf(-0.01)) == 0.0
        assert float(dist.cdf(1.0)) == pytest.approx(1.0)

    def test_ppf_inverts_cdf(self):
        dist = BoundedGaussian(0.3, 0.0, 0.7)
        for q in (0.05, 0.5, 0.95):
            r = float(dist.ppf(q))
            assert float(dist.cdf(r)) == pytest.approx(q, abs=1e-6)

    def test_samples_inside(self):
        dist = BoundedGaussian(1.0, 0.0, 0.4)
        samples = dist.sample(size=500, rng=0)
        assert samples.min() >= 0.0 and samples.max() <= 0.4

    def test_degenerate(self):
        dist = BoundedGaussian(1.0, 0.2, 0.2)
        np.testing.assert_allclose(dist.sample(size=5, rng=0), 0.2)

    def test_invalid(self):
        with pytest.raises(PrivacyError):
            BoundedGaussian(0.0, 0.0, 1.0)
        with pytest.raises(PrivacyError):
            BoundedGaussian(1.0, 1.0, 0.0)


class TestGaussianMechanism:
    def test_subtractive_band(self):
        mechanism = GaussianPrivacyMechanism(GaussianPPMConfig(epsilon=0.1), rng=0)
        routing = np.random.default_rng(0).uniform(0.0, 1.0, (5, 5))
        perturbed = mechanism.perturb(routing)
        assert np.all(perturbed <= routing + 1e-12)
        assert np.all(perturbed >= 0.5 * routing - 1e-12)  # delta = 0.5

    def test_audit_trail(self):
        mechanism = GaussianPrivacyMechanism(GaussianPPMConfig(epsilon=0.3), rng=0)
        mechanism.perturb(np.full((2, 2), 0.5))
        assert mechanism.releases() == 1
        assert mechanism.total_epsilon_basic() == pytest.approx(0.3)

    def test_more_budget_less_noise(self):
        routing = np.full((10, 10), 0.9)
        totals = []
        for epsilon in (0.01, 100.0):
            mechanism = GaussianPrivacyMechanism(GaussianPPMConfig(epsilon=epsilon), rng=1)
            noise = sum(
                float(np.sum(routing - mechanism.perturb(routing))) for _ in range(10)
            )
            totals.append(noise)
        assert totals[0] > totals[1]

    def test_config_validation(self):
        with pytest.raises(PrivacyError):
            GaussianPPMConfig(epsilon=0.0)
        with pytest.raises(PrivacyError):
            GaussianPPMConfig(epsilon=1.0, dp_delta=0.0)
        with pytest.raises(PrivacyError):
            GaussianPPMConfig(epsilon=1.0, delta=1.0)

    def test_rejects_bad_routing(self):
        mechanism = GaussianPrivacyMechanism(GaussianPPMConfig(epsilon=1.0), rng=0)
        with pytest.raises(PrivacyError):
            mechanism.perturb(np.array([[2.0]]))


class TestFactory:
    def test_dispatch_laplace(self):
        assert isinstance(
            build_mechanism(LPPMConfig(epsilon=0.1), rng=0), LaplacePrivacyMechanism
        )

    def test_dispatch_gaussian(self):
        assert isinstance(
            build_mechanism(GaussianPPMConfig(epsilon=0.1), rng=0),
            GaussianPrivacyMechanism,
        )

    def test_unknown_config(self):
        with pytest.raises(PrivacyError):
            build_mechanism(object())


class TestDistributedIntegration:
    def test_gaussian_run(self, tiny_problem):
        from repro.core.distributed import DistributedConfig, solve_distributed

        result = solve_distributed(
            tiny_problem,
            DistributedConfig(max_iterations=4, accuracy=0.0),
            privacy=GaussianPPMConfig(epsilon=0.1),
            rng=0,
        )
        assert result.history.total_noise() > 0.0
        assert result.solution.is_feasible(tiny_problem)
        assert result.total_epsilon == pytest.approx(0.1 * result.iterations)
