"""Performance observability: timers, counters and their registry.

See :mod:`repro.perf.registry` for the collection model and
docs/performance.md for the counter glossary and benchmark harness.
"""

from .registry import (
    PerfRegistry,
    Timer,
    activate,
    active_registry,
    add_time,
    collecting,
    count,
    deactivate,
    timed,
)

__all__ = [
    "PerfRegistry",
    "Timer",
    "activate",
    "active_registry",
    "add_time",
    "collecting",
    "count",
    "deactivate",
    "timed",
]
