"""Minimal discrete-event scheduler for asynchronous protocol simulation.

A classic event loop: callbacks are scheduled at future timestamps and
executed in time order (FIFO among equal timestamps).  Used by
:mod:`repro.core.asynchronous` to model SBSs that wake up on their own
clocks and messages that take time to arrive — the setting the paper
defers to future work ("SBSs may not update in one iteration using
possible outdated information").
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from ..exceptions import ValidationError

__all__ = ["EventScheduler"]


class EventScheduler:
    """Priority-queue event loop with deterministic tie-breaking."""

    def __init__(self) -> None:
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self._now = 0.0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` time units from now (``delay >= 0``)."""
        if delay < 0:
            raise ValidationError(f"delay must be nonnegative, got {delay}")
        self.schedule_at(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulation time ``time``.

        Scheduling into the past would silently execute the event "now"
        while claiming an earlier timestamp — a recipe for causality
        bugs — so timestamps before :attr:`now` are rejected.
        """
        if time < self._now:
            raise ValidationError(
                f"cannot schedule into the past: time {time} < now {self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _, callback = heapq.heappop(self._queue)
        self._now = time
        self.events_processed += 1
        callback()
        return True

    def run_until(self, t_end: float, *, max_events: Optional[int] = None) -> int:
        """Run events with timestamp <= ``t_end``; returns events executed.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        if t_end < self._now:
            raise ValidationError(
                f"t_end {t_end} lies in the past (now = {self._now})"
            )
        executed = 0
        while self._queue and self._queue[0][0] <= t_end:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        self._now = max(self._now, t_end)
        return executed

    def pending(self) -> int:
        """Number of scheduled, not-yet-executed events."""
        return len(self._queue)
