"""Synchronous message-passing substrate for the distributed algorithm.

The paper's Algorithm 1 exchanges two message kinds per phase:

* each SBS **uploads** its (possibly privacy-perturbed) routing policy to
  the BS (line 4);
* the BS **broadcasts** the aggregated load to the SBSs (line 5).

This module simulates those exchanges explicitly instead of sharing
numpy arrays between solver objects.  That buys three things:

1. the information flow matches the paper — an SBS only ever sees the
   *aggregate* ``y_{-n}``, never another SBS's individual policy;
2. channels support *taps*, so the eavesdropper of Section IV (who can
   observe the broadcast aggregate in transit) is a first-class object
   used by :mod:`repro.attacks`;
3. message and byte counters quantify the protocol's communication cost.

Payloads are defensively copied on send so a node mutating its local
array cannot retroactively alter a delivered message.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Tuple

import numpy as np

from ..analysis.taint import decl as taint
from ..exceptions import FrameError, ProtocolError, ValidationError

__all__ = ["MAX_PAYLOAD_BYTES", "MessageKind", "Message", "Channel", "ChannelStats"]

#: Hard ceiling on a single message payload (bytes).  The largest
#: legitimate payload is one stacked ``(2, U, F)`` price broadcast; 16 MiB
#: leaves orders of magnitude of headroom while still rejecting a
#: runaway (or adversarial) allocation before it is copied and queued.
MAX_PAYLOAD_BYTES = 16 * 1024 * 1024


class MessageKind(enum.Enum):
    """Protocol message types of Algorithm 1."""

    POLICY_UPLOAD = "policy_upload"        # SBS -> BS: routing block (U, F)
    AGGREGATE_BROADCAST = "aggregate"      # BS -> SBS: aggregated routing (U, F)
    ACK = "ack"                            # BS -> SBS: cumulative upload ack
    CONTROL = "control"                    # orchestration metadata


@taint.carrier
@dataclasses.dataclass(frozen=True)
class Message:
    """A single message in flight.

    ``sender``/``recipient`` are node names (``"bs"`` or ``"sbs-<n>"``;
    ``recipient="*"`` denotes a broadcast).  ``payload`` is a read-only
    numpy array; ``iteration`` and ``phase`` tag the Gauss-Seidel step
    that produced it.  ``seq`` is a per-sender sequence number used by
    the reliable-delivery (ARQ) layer; the default ``0`` means
    "unsequenced" and is what the failure-free protocol sends.
    """

    kind: MessageKind
    sender: str
    recipient: str
    payload: np.ndarray
    iteration: int
    phase: int
    seq: int = 0

    def nbytes(self) -> int:
        """Size of the payload in bytes (communication-cost accounting)."""
        return int(self.payload.nbytes)


@dataclasses.dataclass
class ChannelStats:
    """Cumulative traffic counters for a channel.

    Beyond the send counters, the fault-injection layer
    (:class:`repro.network.faults.FaultyChannel`) and the ARQ layer in
    :mod:`repro.core.distributed` fold their outcomes in here too, so a
    single object answers both "what did the protocol cost" and "what
    did the network do to it".
    """

    messages_sent: int = 0
    bytes_sent: int = 0
    by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    bytes_by_kind: Dict[str, int] = dataclasses.field(default_factory=dict)
    # Fault-injection outcomes (always zero on a reliable Channel).
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    reordered: int = 0
    # Receive-side integrity outcomes (populated by the truncation fault
    # and the socket runtime of :mod:`repro.runtime`): frames discarded
    # because their checksum or framing failed, reports rejected by the
    # BS's byzantine filter, and phases the BS closed because a straggler
    # missed the phase deadline.
    corrupted: int = 0
    byzantine_rejected: int = 0
    deadline_expired: int = 0
    # Retransmissions issued by the ARQ layer (each is also counted in
    # ``messages_sent`` when it hits the wire).
    retransmissions: int = 0
    # Wire traffic carrying an already-seen sequence number: ARQ resends
    # and repeated cumulative acks.  Counted in ``messages_sent`` /
    # ``bytes_sent`` (they do cross the wire) but kept out of the
    # per-kind payload ledgers, which tally each distinct payload once.
    retransmitted_messages: int = 0
    retransmitted_bytes: int = 0

    def record(self, message: Message, *, retransmission: bool = False) -> None:
        """Fold one sent message into the counters.

        ``messages_sent`` / ``bytes_sent`` are *wire* totals and grow on
        every send.  The ``by_kind`` / ``bytes_by_kind`` ledgers measure
        *delivered payload*, so a retried upload (same sequence number
        sent again) lands in ``retransmitted_*`` instead of inflating
        its kind's ledger; the invariant is
        ``bytes_sent == sum(bytes_by_kind.values()) + retransmitted_bytes``.
        """
        self.messages_sent += 1
        self.bytes_sent += message.nbytes()
        if retransmission:
            self.retransmitted_messages += 1
            self.retransmitted_bytes += message.nbytes()
            return
        key = message.kind.value
        self.by_kind[key] = self.by_kind.get(key, 0) + 1
        self.bytes_by_kind[key] = self.bytes_by_kind.get(key, 0) + message.nbytes()


class Channel:
    """A reliable, in-order, synchronous message channel with taps.

    ``send`` enqueues a message for its recipient; ``receive`` pops the
    oldest message addressed to a node (broadcasts are delivered to every
    registered node).  Taps registered via :meth:`tap` observe every
    message as it is sent — this models the paper's threat: "attackers
    [can] access the aggregated routing policy during the broadcasting".
    """

    def __init__(self) -> None:
        self._queues: Dict[str, Deque[Message]] = {}
        self._taps: List[Callable[[Message], None]] = []
        self.stats = ChannelStats()
        # Highest sequence number seen per (sender, recipient, kind)
        # conversation; a sequenced message at or below it is a re-send.
        self._highest_seq: Dict[Tuple[str, str, str], int] = {}

    def register(self, node_name: str) -> None:
        """Register a node so it can receive broadcasts."""
        if not node_name or node_name == "*":
            raise ValidationError(f"invalid node name {node_name!r}")
        self._queues.setdefault(node_name, deque())

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(self._queues)

    def tap(self, observer: Callable[[Message], None]) -> None:
        """Attach an observer invoked for every sent message."""
        self._taps.append(observer)

    @taint.sink("bs-upload")
    def send(self, message: Message) -> None:
        """Deliver ``message`` (or broadcast it when recipient is ``"*"``).

        Payloads are validated at the send boundary: a zero-length or
        oversized payload (or one that cannot be represented as a float
        array at all) raises :class:`~repro.exceptions.FrameError`
        instead of being silently queued — the receive side should never
        have to guess what an empty routing block means.
        """
        try:
            payload = np.array(message.payload, dtype=np.float64, copy=True)
        except (TypeError, ValueError) as error:
            raise FrameError(
                f"{message.kind.value} payload from {message.sender!r} is not "
                f"numeric: {error}"
            ) from error
        if payload.size == 0:
            raise FrameError(
                f"zero-length {message.kind.value} payload from {message.sender!r}"
            )
        if payload.nbytes > MAX_PAYLOAD_BYTES:
            raise FrameError(
                f"{message.kind.value} payload from {message.sender!r} is "
                f"{payload.nbytes} bytes, exceeding the {MAX_PAYLOAD_BYTES}-byte frame limit"
            )
        payload.setflags(write=False)
        message = dataclasses.replace(message, payload=payload)
        if message.recipient == "*":
            recipients = [name for name in self._queues if name != message.sender]
            if not recipients:
                raise ProtocolError("broadcast sent but no nodes are registered")
        else:
            if message.recipient not in self._queues:
                raise ProtocolError(f"unknown recipient {message.recipient!r}")
            recipients = [message.recipient]
        retransmission = False
        if message.seq > 0:
            conversation = (message.sender, message.recipient, message.kind.value)
            if message.seq <= self._highest_seq.get(conversation, 0):
                retransmission = True
            else:
                self._highest_seq[conversation] = message.seq
        self.stats.record(message, retransmission=retransmission)
        for observer in self._taps:
            observer(message)
        self._deliver(message, recipients)

    def _deliver(self, message: Message, recipients: List[str]) -> None:
        """Enqueue ``message`` for each recipient (reliable, in order).

        Subclasses (:class:`repro.network.faults.FaultyChannel`) override
        this hook to drop, duplicate, delay or reorder deliveries; taps
        and stats have already observed the send by the time it runs.
        """
        for name in recipients:
            self._queues[name].append(message)

    def receive(self, node_name: str) -> Message:
        """Pop the oldest pending message for ``node_name``."""
        if node_name not in self._queues:
            raise ProtocolError(f"node {node_name!r} is not registered")
        queue = self._queues[node_name]
        if not queue:
            raise ProtocolError(f"no pending message for {node_name!r}")
        return queue.popleft()

    def pending(self, node_name: str) -> int:
        """Number of undelivered messages for ``node_name``."""
        if node_name not in self._queues:
            raise ProtocolError(f"node {node_name!r} is not registered")
        return len(self._queues[node_name])

    def drain(self, node_name: str) -> List[Message]:
        """Receive every pending message for ``node_name``."""
        messages = []
        while self.pending(node_name):
            messages.append(self.receive(node_name))
        return messages
