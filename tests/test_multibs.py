"""Tests for the multi-BS (multi-cell) decomposition."""

import numpy as np
import pytest

from repro.core.distributed import DistributedConfig, solve_distributed
from repro.core.multibs import split_by_region, solve_multibs
from repro.core.problem import ProblemInstance
from repro.exceptions import ValidationError


def two_cell_problem() -> ProblemInstance:
    """Four groups, two cells {0,1} and {2,3}; one SBS per cell."""
    demand = np.array(
        [
            [6.0, 3.0],
            [4.0, 2.0],
            [5.0, 2.5],
            [3.0, 4.0],
        ]
    )
    connectivity = np.array(
        [
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 1.0],
        ]
    )
    return ProblemInstance(
        demand=demand,
        connectivity=connectivity,
        cache_capacity=np.array([1.0, 1.0]),
        bandwidth=np.array([6.0, 6.0]),
        sbs_cost=np.ones((2, 4)),
        bs_cost=np.array([100.0, 110.0, 105.0, 95.0]),
    )


class TestSplit:
    def test_two_cells(self):
        problem = two_cell_problem()
        regions = split_by_region(problem, [0, 0, 1, 1])
        assert len(regions) == 2
        assert regions[0].problem.num_groups == 2
        assert regions[0].sbs_indices == (0,)
        assert regions[1].sbs_indices == (1,)

    def test_submatrices_correct(self):
        problem = two_cell_problem()
        regions = split_by_region(problem, [0, 0, 1, 1])
        np.testing.assert_allclose(regions[1].problem.demand, problem.demand[2:])
        np.testing.assert_allclose(regions[1].problem.bs_cost, problem.bs_cost[2:])

    def test_cross_cell_sbs_rejected(self):
        problem = two_cell_problem()
        with pytest.raises(ValidationError, match="cross-cell"):
            split_by_region(problem, [0, 1, 1, 1])

    def test_wrong_label_count(self):
        problem = two_cell_problem()
        with pytest.raises(ValidationError):
            split_by_region(problem, [0, 0])

    def test_cell_without_sbs(self):
        """A cell whose groups no SBS reaches is served purely by its BS."""
        demand = np.array([[2.0], [3.0]])
        connectivity = np.array([[1.0, 0.0]])
        problem = ProblemInstance(
            demand=demand,
            connectivity=connectivity,
            cache_capacity=np.array([1.0]),
            bandwidth=np.array([5.0]),
            sbs_cost=np.ones((1, 2)),
            bs_cost=np.array([50.0, 60.0]),
        )
        regions = split_by_region(problem, [0, 1])
        assert len(regions) == 2
        empty = regions[1]
        assert empty.sbs_indices == ()
        assert empty.problem.max_cost() == pytest.approx(60.0 * 3.0)


class TestSolve:
    def test_total_matches_joint(self):
        """Because cells are independent, per-cell solving equals solving
        the joint problem."""
        problem = two_cell_problem()
        regions = split_by_region(problem, [0, 0, 1, 1])
        config = DistributedConfig(accuracy=1e-6, max_iterations=10)
        multi = solve_multibs(regions, config, rng=0)
        joint = solve_distributed(problem, config, rng=0)
        assert multi.total_cost() == pytest.approx(joint.cost, rel=1e-6)

    def test_per_cell_feasible(self):
        problem = two_cell_problem()
        regions = split_by_region(problem, [0, 0, 1, 1])
        multi = solve_multibs(regions, DistributedConfig(max_iterations=5), rng=0)
        for region in regions:
            result = multi.results[region.name]
            assert result.solution.is_feasible(region.problem)

    def test_empty_regions_rejected(self):
        with pytest.raises(ValidationError):
            solve_multibs([])

    def test_iterations_aggregated(self):
        problem = two_cell_problem()
        regions = split_by_region(problem, [0, 0, 1, 1])
        multi = solve_multibs(regions, DistributedConfig(max_iterations=5), rng=0)
        assert multi.total_iterations() >= 2
