"""Randomized exact-parity suites for the batched numpy kernels.

The batched fractional-knapsack and the batched subgradient ascent are
only admissible because they are *bit-identical* to the scalar paths —
same stable tie-breaking, same floating-point operation order.  These
suites hammer that claim with seeded random instances, degenerate cases
included, asserting exact equality (no tolerances anywhere).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.subproblem import (
    SubproblemConfig,
    SubproblemWorkspace,
    solve_subproblem,
)
from repro.solvers.fractional_knapsack import (
    KnapsackBatchWorkspace,
    solve_fractional_knapsack,
    solve_fractional_knapsack_batch,
)

from conftest import random_problem


def _random_knapsack(rng: np.random.Generator, batch: int, items: int):
    """One random batch instance with adversarial structure mixed in."""
    costs = rng.normal(0.0, 1.0, size=(batch, items))
    weights = rng.uniform(0.0, 2.0, size=items)
    caps = rng.uniform(0.0, 3.0, size=(batch, items))
    # Zero-weight (free) items with negative costs.
    if items >= 2:
        weights[rng.integers(items)] = 0.0
    # Value-density ties: clone one item's cost/weight pair into another.
    if items >= 3:
        src, dst = rng.choice(items, size=2, replace=False)
        costs[:, dst] = costs[:, src]
        weights[dst] = weights[src]
    # Zero caps on a slice of items.
    caps[:, rng.integers(items)] = 0.0
    budget = float(rng.uniform(0.0, weights.sum() + 1.0))
    return costs, weights, caps, budget


class TestKnapsackBatchParity:
    """Batched knapsack vs ``solve_fractional_knapsack``: exact, always."""

    def test_random_instances_exact(self):
        """~200 random batches, each row checked against the scalar solver."""
        rng = np.random.default_rng(1234)
        workspace = None
        for case in range(200):
            batch = int(rng.integers(1, 6))
            items = int(rng.integers(1, 25))
            costs, weights, caps, budget = _random_knapsack(rng, batch, items)
            if case % 11 == 0:
                budget = 0.0  # degenerate: no budget at all
            result = solve_fractional_knapsack_batch(
                costs, weights, budget, caps, workspace=workspace
            )
            for b in range(batch):
                scalar = solve_fractional_knapsack(costs[b], weights, budget, caps[b])
                assert np.array_equal(result.allocations[b], scalar.allocation), (
                    f"case {case} row {b}: allocations differ"
                )
                assert result.objectives[b] == scalar.objective
                assert result.budgets_used[b] == scalar.budget_used

    def test_single_item_rows(self):
        """The smallest possible instance, profitable and not."""
        rng = np.random.default_rng(7)
        for _ in range(20):
            costs = rng.normal(0.0, 1.0, size=(1, 1))
            weights = rng.uniform(0.0, 2.0, size=1)
            caps = rng.uniform(0.0, 2.0, size=(1, 1))
            budget = float(rng.uniform(0.0, 2.0))
            result = solve_fractional_knapsack_batch(costs, weights, budget, caps)
            scalar = solve_fractional_knapsack(costs[0], weights, budget, caps[0])
            assert np.array_equal(result.allocations[0], scalar.allocation)
            assert result.objectives[0] == scalar.objective

    def test_all_ties_all_profitable(self):
        """Every item identical: stable order must match the scalar sort."""
        items = 12
        costs = np.full((3, items), -1.0)
        weights = np.full(items, 0.5)
        caps = np.ones((3, items))
        budget = 2.0
        result = solve_fractional_knapsack_batch(costs, weights, budget, caps)
        for b in range(3):
            scalar = solve_fractional_knapsack(costs[b], weights, budget, caps[b])
            assert np.array_equal(result.allocations[b], scalar.allocation)

    def test_zero_capacity_everywhere(self):
        costs = np.array([[-1.0, -2.0, -3.0]])
        weights = np.array([1.0, 1.0, 1.0])
        caps = np.zeros((1, 3))
        result = solve_fractional_knapsack_batch(costs, weights, 5.0, caps)
        scalar = solve_fractional_knapsack(costs[0], weights, 5.0, caps[0])
        assert np.array_equal(result.allocations[0], scalar.allocation)
        assert result.objectives[0] == scalar.objective == 0.0

    def test_workspace_reuse_across_batch_shapes(self):
        """A stale workspace of the wrong shape must be replaced, not trusted."""
        rng = np.random.default_rng(99)
        workspace = KnapsackBatchWorkspace(2, 4)
        for batch, items in ((2, 4), (3, 7), (1, 2), (5, 20)):
            costs, weights, caps, budget = _random_knapsack(rng, batch, items)
            result = solve_fractional_knapsack_batch(
                costs, weights, budget, caps, workspace=workspace
            )
            for b in range(batch):
                scalar = solve_fractional_knapsack(costs[b], weights, budget, caps[b])
                assert np.array_equal(result.allocations[b], scalar.allocation)


class TestSubgradientStepParity:
    """Batched multiplier updates vs the scalar ascent: exact trajectories."""

    def test_projected_step_matches_scalar(self):
        """The fused 2-D projected step equals the per-element update."""
        rng = np.random.default_rng(42)
        for _ in range(200):
            size = int(rng.integers(1, 40))
            mu = np.abs(rng.normal(0.0, 1.0, size=size))
            subgrad = rng.normal(0.0, 1.0, size=size)
            step = float(rng.uniform(0.0, 0.5))
            batched = np.maximum(mu + step * subgrad, 0.0)
            scalar = np.array(
                [max(mu[i] + step * subgrad[i], 0.0) for i in range(size)]
            )
            assert np.array_equal(batched, scalar)

    @pytest.mark.parametrize("polish", [True, False])
    def test_full_ascent_parity_random_instances(self, polish):
        """Batched dual ascent == hoisted == legacy on random subproblems.

        This is the end-to-end guarantee: same dual history (every
        iterate), same multipliers, same primal solution — so
        ``repro-trace diff`` and the byte-identity anchors are safe no
        matter which oracle ran.
        """
        rng = np.random.default_rng(2024)
        ws_batched = None
        ws_hoisted = None
        for case in range(12):
            problem = random_problem(
                rng,
                num_sbs=2,
                num_groups=int(rng.integers(2, 7)),
                num_files=int(rng.integers(2, 9)),
            )
            if ws_batched is None:
                ws_batched = SubproblemWorkspace(problem)
                ws_hoisted = SubproblemWorkspace(problem)
            shape = (problem.num_groups, problem.num_files)
            aggregate = np.clip(rng.uniform(size=shape) * 1.2 - 0.1, 0.0, None)
            kwargs = {}
            if case % 3 == 1:
                kwargs["prices"] = np.abs(rng.normal(0.0, 0.05, size=shape))
                kwargs["cap_slack"] = 0.1
            if case % 3 == 2:
                kwargs["initial_multipliers"] = np.abs(
                    rng.normal(0.0, 0.2, size=shape)
                )
            solutions = {
                oracle: solve_subproblem(
                    problem,
                    0,
                    aggregate,
                    SubproblemConfig(oracle=oracle, polish=polish, max_iter=30),
                    workspace={
                        "batched": ws_batched,
                        "hoisted": ws_hoisted,
                        "legacy": None,
                    }[oracle],
                    **kwargs,
                )
                for oracle in ("batched", "hoisted", "legacy")
            }
            reference = solutions["legacy"]
            for oracle in ("batched", "hoisted"):
                candidate = solutions[oracle]
                assert np.array_equal(candidate.caching, reference.caching), (
                    f"case {case}: {oracle} caching differs"
                )
                assert np.array_equal(candidate.routing, reference.routing)
                assert candidate.cost == reference.cost
                assert candidate.best_dual == reference.best_dual
                assert candidate.dual_history == reference.dual_history
                assert candidate.iterations == reference.iterations
                assert candidate.converged == reference.converged
                assert np.array_equal(candidate.multipliers, reference.multipliers)
