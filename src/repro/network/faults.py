"""Fault injection for the protocol substrate.

Real 5G small-cell backhaul is nothing like the reliable, in-order
channel Algorithm 1 is written against: control messages get lost,
delayed and reordered, SBSs crash and come back, links partition.  This
module makes those failures first-class and *deterministic* so the
solvers can be hardened against them and the benchmarks can measure the
degradation they cause:

* :class:`LinkFaultProfile` — per-message-kind probabilities of drop,
  duplication, delay and reordering;
* :class:`FaultSchedule` — declarative, iteration-indexed windows of
  node crashes and link partitions ("crash sbs-1 at iteration 3,
  recover at 6");
* :class:`FaultyChannel` — a drop-in :class:`~repro.network.messaging.Channel`
  that applies both, driven by a seeded ``numpy`` generator so two runs
  with the same seed inject byte-identical fault sequences.

Time on a :class:`FaultyChannel` advances in *ticks*: every ``send`` is
one tick, and the ARQ layer's backoff waits call :meth:`FaultyChannel.advance`
explicitly.  Delayed messages sit in a holding buffer until their due
tick.  Protocol iterations (for the schedule) are set by the
orchestrator via :meth:`FaultyChannel.set_time`.
"""

from __future__ import annotations

import dataclasses
from typing import List, Mapping, Optional, Tuple, Union

import numpy as np

from .. import obs
from .._validation import check_in_interval
from ..exceptions import ValidationError
from .messaging import Channel, Message, MessageKind

__all__ = [
    "LinkFaultProfile",
    "CrashWindow",
    "PartitionWindow",
    "FaultSchedule",
    "FaultConfig",
    "FaultyChannel",
]


@dataclasses.dataclass(frozen=True)
class LinkFaultProfile:
    """Independent per-delivery fault probabilities for one message kind.

    Each delivery attempt (one recipient of one send) draws, in order:
    drop, then — if not dropped — truncation, delay, duplication and
    reordering.  ``max_delay_ticks`` bounds how long a delayed message
    is held.

    ``truncate`` models a frame cut short on the wire.  On this
    in-process channel a truncated message is discarded at the receive
    boundary (its checksum would never verify) and counted in
    ``ChannelStats.corrupted``; the socket chaos proxy of
    :mod:`repro.runtime.chaos` forwards the actual byte prefix so the
    real CRC check does the discarding.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    truncate: float = 0.0
    max_delay_ticks: int = 3

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "reorder", "truncate"):
            check_in_interval(getattr(self, name), name, low=0.0, high=1.0)
        if self.max_delay_ticks < 1:
            raise ValidationError(
                f"max_delay_ticks must be >= 1, got {self.max_delay_ticks}"
            )

    @property
    def is_quiet(self) -> bool:
        """True when this profile never perturbs a delivery."""
        rates = (self.drop, self.duplicate, self.delay, self.reorder, self.truncate)
        # repro-lint: disable=float-equality -- rates are user-set constants; exact 0.0 means "feature off"
        return all(rate == 0.0 for rate in rates)


@dataclasses.dataclass(frozen=True)
class CrashWindow:
    """Node ``node`` is down for iterations ``start <= tau < end``."""

    node: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.node:
            raise ValidationError("crash window needs a node name")
        if self.end <= self.start:
            raise ValidationError(
                f"crash window must end after it starts, got [{self.start}, {self.end})"
            )

    def covers(self, iteration: int) -> bool:
        """Whether this window has the node down at ``iteration``."""
        return self.start <= iteration < self.end


@dataclasses.dataclass(frozen=True)
class PartitionWindow:
    """Link ``a <-> b`` drops everything for iterations ``start <= tau < end``."""

    a: str
    b: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if not self.a or not self.b or self.a == self.b:
            raise ValidationError("partition window needs two distinct node names")
        if self.end <= self.start:
            raise ValidationError(
                f"partition window must end after it starts, got [{self.start}, {self.end})"
            )

    def covers(self, a: str, b: str, iteration: int) -> bool:
        """Whether this window severs the ``a <-> b`` link at ``iteration``."""
        return {a, b} == {self.a, self.b} and self.start <= iteration < self.end


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """Declarative crash/partition timeline, indexed by protocol iteration."""

    crashes: Tuple[CrashWindow, ...] = ()
    partitions: Tuple[PartitionWindow, ...] = ()

    def is_crashed(self, node: str, iteration: int) -> bool:
        """Whether ``node`` is down at ``iteration``."""
        return any(w.node == node and w.covers(iteration) for w in self.crashes)

    def is_partitioned(self, a: str, b: str, iteration: int) -> bool:
        """Whether the ``a <-> b`` link is severed at ``iteration``."""
        return any(w.covers(a, b, iteration) for w in self.partitions)

    def crash_sbs(self, index: int, at: int, recover_at: int) -> "FaultSchedule":
        """Return a schedule with SBS ``index`` down for ``[at, recover_at)``."""
        window = CrashWindow(node=f"sbs-{index}", start=at, end=recover_at)
        return dataclasses.replace(self, crashes=self.crashes + (window,))

    def partition_link(self, a: str, b: str, at: int, heal_at: int) -> "FaultSchedule":
        """Return a schedule with the ``a <-> b`` link cut for ``[at, heal_at)``."""
        window = PartitionWindow(a=a, b=b, start=at, end=heal_at)
        return dataclasses.replace(self, partitions=self.partitions + (window,))


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Everything a :class:`FaultyChannel` needs to misbehave on purpose.

    ``default`` applies to every message kind not listed in ``by_kind``
    (keys may be :class:`MessageKind` members or their string values).
    ``seed`` makes the injected fault sequence reproducible.
    """

    default: LinkFaultProfile = dataclasses.field(default_factory=LinkFaultProfile)
    by_kind: Mapping[Union[MessageKind, str], LinkFaultProfile] = dataclasses.field(
        default_factory=dict
    )
    schedule: FaultSchedule = dataclasses.field(default_factory=FaultSchedule)
    seed: int = 0

    def __post_init__(self) -> None:
        known = {member.value for member in MessageKind}
        for key in self.by_kind:
            value = key.value if isinstance(key, MessageKind) else key
            if value not in known:
                raise ValidationError(
                    f"unknown message kind in by_kind: {key!r} "
                    f"(expected one of {sorted(known)})"
                )

    def profile_for(self, kind: MessageKind) -> LinkFaultProfile:
        """The fault profile governing messages of ``kind``."""
        for key, profile in self.by_kind.items():
            if key is kind or key == kind.value:
                return profile
        return self.default


class FaultyChannel(Channel):
    """A :class:`Channel` that injects seeded, configurable faults.

    Same interface as the reliable channel — ``register`` / ``send`` /
    ``receive`` / ``drain`` / taps / stats — plus:

    * :meth:`set_time` — advance the schedule's protocol iteration;
    * :meth:`advance` — burn backoff ticks so delayed messages surface;
    * :meth:`node_is_up` — whether the schedule has a node crashed now.

    Fault order per delivery: schedule (crash/partition) first, then the
    probabilistic drop / delay / duplicate / reorder draws.  All draws
    come from one seeded generator in a fixed order, so identical seeds
    give identical runs.
    """

    def __init__(self, config: Optional[FaultConfig] = None) -> None:
        super().__init__()
        self.config = config or FaultConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self.iteration = 0
        self._tick = 0
        # Delayed messages: (due_tick, insertion_index, recipient, message).
        self._held: List[Tuple[int, int, str, Message]] = []
        self._held_counter = 0

    # -- schedule plumbing ---------------------------------------------
    def set_time(self, iteration: int) -> None:
        """Tell the channel which protocol iteration is running."""
        self.iteration = int(iteration)

    def node_is_up(self, node_name: str) -> bool:
        """Whether ``node_name`` is currently alive per the schedule."""
        return not self.config.schedule.is_crashed(node_name, self.iteration)

    # -- tick clock ----------------------------------------------------
    def advance(self, ticks: int = 1) -> int:
        """Advance the tick clock, releasing due delayed messages.

        Returns the number of messages released.  The ARQ layer calls
        this during backoff waits so that in-flight delayed traffic can
        arrive before the next retransmission.
        """
        if ticks < 0:
            raise ValidationError(f"ticks must be nonnegative, got {ticks}")
        self._tick += int(ticks)
        return self._release_due()

    def _release_due(self) -> int:
        due = [entry for entry in self._held if entry[0] <= self._tick]
        if not due:
            return 0
        self._held = [entry for entry in self._held if entry[0] > self._tick]
        for _, _, recipient, message in sorted(due, key=lambda e: (e[0], e[1])):
            self._enqueue(recipient, message)
        return len(due)

    # -- faulty delivery -----------------------------------------------
    def _deliver(self, message: Message, recipients: List[str]) -> None:
        self.advance(1)  # every send is one tick of channel time
        schedule = self.config.schedule
        profile = self.config.profile_for(message.kind)
        sender_down = schedule.is_crashed(message.sender, self.iteration)
        for name in recipients:
            if (
                sender_down
                or schedule.is_crashed(name, self.iteration)
                or schedule.is_partitioned(message.sender, name, self.iteration)
            ):
                self.stats.dropped += 1
                obs.emit(
                    "protocol",
                    event="drop",
                    reason="partition",
                    kind=message.kind.value,
                    sender=message.sender,
                    recipient=name,
                    tick=self._tick,
                )
                continue
            self._deliver_one(name, message, profile)

    def _deliver_one(self, name: str, message: Message, profile: LinkFaultProfile) -> None:
        if profile.is_quiet:
            self._enqueue(name, message)
            return
        if self._rng.random() < profile.drop:
            self.stats.dropped += 1
            obs.emit(
                "protocol",
                event="drop",
                reason="loss",
                kind=message.kind.value,
                sender=message.sender,
                recipient=name,
                tick=self._tick,
            )
            return
        # Truncation: the frame arrives cut short, fails its integrity
        # check at the receiver and is discarded.  The draw is only taken
        # when the profile enables it, so profiles without truncation
        # consume exactly the same random sequence as before the feature
        # existed (seeded runs stay reproducible across versions).
        if profile.truncate > 0.0 and self._rng.random() < profile.truncate:
            self.stats.corrupted += 1
            obs.emit(
                "protocol",
                event="drop",
                reason="truncated",
                kind=message.kind.value,
                sender=message.sender,
                recipient=name,
                tick=self._tick,
            )
            return
        if self._rng.random() < profile.delay:
            ticks = 1 + int(self._rng.integers(profile.max_delay_ticks))
            self.stats.delayed += 1
            self._held.append((self._tick + ticks, self._held_counter, name, message))
            self._held_counter += 1
        else:
            self._enqueue(name, message, reorder=profile.reorder)
        if self._rng.random() < profile.duplicate:
            self.stats.duplicated += 1
            self._enqueue(name, message)

    def _enqueue(self, name: str, message: Message, *, reorder: float = 0.0) -> None:
        queue = self._queues[name]
        if reorder > 0.0 and len(queue) >= 1 and self._rng.random() < reorder:
            # Adjacent transposition: overtake the most recently queued
            # message (a mild, realistic reordering).
            self.stats.reordered += 1
            queue.insert(len(queue) - 1, message)
        else:
            queue.append(message)

    # -- introspection -------------------------------------------------
    @property
    def in_flight(self) -> int:
        """Number of delayed messages currently held back."""
        return len(self._held)
