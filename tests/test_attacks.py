"""Tests for the eavesdropper differencing attack (Section IV threat)."""

import numpy as np
import pytest

from repro.attacks.reconstruction import (
    Eavesdropper,
    run_eavesdropper_experiment,
)
from repro.core.distributed import DistributedConfig
from repro.exceptions import ValidationError
from repro.privacy.mechanism import LPPMConfig


class TestEavesdropper:
    def test_needs_two_broadcasts(self):
        eavesdropper = Eavesdropper(num_sbs=2)
        with pytest.raises(ValidationError):
            eavesdropper.reconstruct_reports()

    def test_invalid_num_sbs(self):
        with pytest.raises(ValidationError):
            Eavesdropper(num_sbs=0)


class TestNoiselessBreach:
    def test_exact_reconstruction_without_privacy(self, tiny_problem):
        """Without LPPM the differencing attack recovers every SBS's
        routing policy exactly — the motivating breach."""
        report, result = run_eavesdropper_experiment(
            tiny_problem, DistributedConfig(max_iterations=6)
        )
        assert report.breached
        assert max(report.per_sbs_error_vs_true) < 1e-9

    def test_reported_policies_always_recovered(self, tiny_problem):
        """The reported policy is public by construction: the attack
        reconstructs it exactly with or without noise."""
        for privacy in (None, LPPMConfig(epsilon=0.1)):
            report, _ = run_eavesdropper_experiment(
                tiny_problem,
                DistributedConfig(max_iterations=4, accuracy=0.0),
                privacy=privacy,
                rng=0,
            )
            assert max(report.per_sbs_error_vs_reported) < 1e-9


class TestLPPMProtection:
    def test_noise_floor_protects_true_policy(self, tiny_problem):
        """With LPPM the attacker's best estimate of the *true* policy is
        off by (at least) the mechanism's noise floor."""
        report, result = run_eavesdropper_experiment(
            tiny_problem,
            DistributedConfig(max_iterations=4, accuracy=0.0),
            privacy=LPPMConfig(epsilon=0.01, delta=0.5),
            rng=1,
        )
        assert not report.breached
        assert report.mean_error_vs_true > 1e-3

    def test_smaller_epsilon_larger_error(self, tiny_problem):
        errors = []
        for epsilon in (0.01, 1000.0):
            per_seed = []
            for seed in range(4):
                report, _ = run_eavesdropper_experiment(
                    tiny_problem,
                    DistributedConfig(max_iterations=3, accuracy=0.0),
                    privacy=LPPMConfig(epsilon=epsilon),
                    rng=seed,
                )
                per_seed.append(report.mean_error_vs_true)
            errors.append(np.mean(per_seed))
        assert errors[0] > errors[1]

    def test_jacobi_schedule_rejected(self, tiny_problem):
        with pytest.raises(ValidationError):
            run_eavesdropper_experiment(
                tiny_problem, DistributedConfig(mode="jacobi")
            )
