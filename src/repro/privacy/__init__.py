"""Differential-privacy substrate: bounded Laplace, LPPM, accounting."""

from .audit import AuditResult, audit_mechanism, estimate_epsilon
from .exponential import exponential_mechanism, private_cache_selection
from .factory import MechanismConfig, build_mechanism
from .gaussian import (
    BoundedGaussian,
    GaussianPPMConfig,
    GaussianPrivacyMechanism,
    gaussian_sigma,
)

from .accountant import (
    PrivacyAccountant,
    Release,
    advanced_composition_epsilon,
    per_release_epsilon,
)
from .analysis import (
    NoiseDistribution,
    Theorem5Bound,
    empirical_cost_increase,
    lipschitz_cost_bound,
    sample_total_noise,
    theorem5_bound,
    total_noise_distribution,
)
from .laplace import BoundedLaplace, Laplace, bounded_laplace_normalizer
from .mechanism import LaplacePrivacyMechanism, LPPMConfig, PerturbationRecord
from .sensitivity import (
    beta_for_epsilon,
    request_sensitivity,
    routing_sensitivity,
    smooth_sensitivity_bound,
)

__all__ = [
    "AuditResult",
    "audit_mechanism",
    "estimate_epsilon",
    "exponential_mechanism",
    "private_cache_selection",
    "MechanismConfig",
    "build_mechanism",
    "BoundedGaussian",
    "GaussianPPMConfig",
    "GaussianPrivacyMechanism",
    "gaussian_sigma",
    "PrivacyAccountant",
    "Release",
    "advanced_composition_epsilon",
    "per_release_epsilon",
    "NoiseDistribution",
    "Theorem5Bound",
    "empirical_cost_increase",
    "lipschitz_cost_bound",
    "sample_total_noise",
    "theorem5_bound",
    "total_noise_distribution",
    "BoundedLaplace",
    "Laplace",
    "bounded_laplace_normalizer",
    "LaplacePrivacyMechanism",
    "LPPMConfig",
    "PerturbationRecord",
    "beta_for_epsilon",
    "request_sensitivity",
    "routing_sensitivity",
    "smooth_sensitivity_bound",
]
