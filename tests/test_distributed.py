"""Tests for Algorithm 1 (distributed Gauss-Seidel) and its privacy mode."""

import numpy as np
import pytest

from repro.core.centralized import solve_centralized, solve_lp_relaxation
from repro.core.distributed import (
    DistributedConfig,
    DistributedOptimizer,
    solve_distributed,
)
from repro.exceptions import ValidationError
from repro.network.messaging import MessageKind
from repro.privacy.mechanism import LPPMConfig

from conftest import random_problem


class TestConfig:
    def test_defaults_valid(self):
        DistributedConfig()

    def test_bad_accuracy(self):
        with pytest.raises(ValidationError):
            DistributedConfig(accuracy=-1.0)

    def test_bad_mode(self):
        with pytest.raises(ValidationError):
            DistributedConfig(mode="chaotic")

    def test_bad_damping(self):
        with pytest.raises(ValidationError):
            DistributedConfig(damping=0.0)


class TestNoiselessRuns:
    def test_converges(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        assert result.converged
        assert result.iterations >= 1

    def test_solution_feasible(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        assert result.solution.is_feasible(tiny_problem)

    def test_cost_below_w(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        assert result.cost < tiny_problem.max_cost()

    def test_cost_above_lp_bound(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        bound, _, _ = solve_lp_relaxation(tiny_problem)
        assert result.cost >= bound - 1e-6

    def test_phase_costs_non_increasing(self, tiny_problem):
        """Theorem 3's monotonicity argument, noiseless case."""
        result = solve_distributed(tiny_problem)
        assert result.history.is_non_increasing()

    def test_caps_mode_bounded_gap(self, rng):
        """The paper-literal caps mode can stall at a block-coordinate
        equilibrium (constraint (4) is coupled), but stays within a
        modest factor of the centralized optimum on these instances."""
        gaps = []
        for seed in range(4):
            problem = random_problem(np.random.default_rng(seed), scarce_bandwidth=True)
            distributed = solve_distributed(
                problem, DistributedConfig(accuracy=1e-6, max_iterations=25)
            )
            centralized = solve_centralized(problem)
            gap = distributed.cost / centralized.cost - 1.0
            assert gap >= -1e-6  # never better than the optimum
            gaps.append(gap)
        assert np.mean(gaps) < 0.10

    def test_prices_mode_near_centralized(self):
        """With congestion-price coordination and best-of-3 sweep orders
        the distributed limit matches the centralized optimum closely."""
        config = DistributedConfig(
            accuracy=1e-6, max_iterations=25, coordination="prices", restarts=3
        )
        gaps = []
        for seed in range(4):
            problem = random_problem(np.random.default_rng(seed), scarce_bandwidth=True)
            distributed = solve_distributed(problem, config, rng=seed)
            centralized = solve_centralized(problem)
            assert distributed.solution.is_feasible(problem)
            gaps.append(distributed.cost / centralized.cost - 1.0)
        assert np.mean(gaps) < 0.01

    def test_unperturbed_equals_reported_without_privacy(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        np.testing.assert_allclose(result.unperturbed_routing, result.solution.routing)
        assert result.unperturbed_cost == pytest.approx(result.cost)

    def test_deterministic_given_seed(self, tiny_problem):
        a = solve_distributed(tiny_problem, rng=5)
        b = solve_distributed(tiny_problem, rng=5)
        assert a.cost == pytest.approx(b.cost)
        np.testing.assert_allclose(a.solution.routing, b.solution.routing)


class TestMessaging:
    def test_messages_flow_through_channel(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        stats = result.channel.stats
        assert stats.messages_sent > 0
        assert MessageKind.POLICY_UPLOAD.value in stats.by_kind
        assert MessageKind.AGGREGATE_BROADCAST.value in stats.by_kind

    def test_upload_count_matches_phases(self, tiny_problem):
        result = solve_distributed(tiny_problem)
        uploads = result.channel.stats.by_kind[MessageKind.POLICY_UPLOAD.value]
        assert uploads == len(result.history.phases)

    def test_sbs_never_receives_individual_policy(self, tiny_problem):
        """Information-flow property: SBSs only ever see aggregates."""
        optimizer = DistributedOptimizer(tiny_problem)
        seen = []
        optimizer.channel.tap(seen.append)
        optimizer.run()
        for message in seen:
            if message.recipient.startswith("sbs") or message.recipient == "*":
                assert message.kind is not MessageKind.POLICY_UPLOAD


class TestPrivateRuns:
    def test_private_run_completes(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(max_iterations=5, accuracy=1e-3),
            privacy=LPPMConfig(epsilon=0.1),
            rng=0,
        )
        assert result.iterations >= 1
        assert result.accountant is not None

    def test_noise_recorded(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(max_iterations=4, accuracy=0.0),
            privacy=LPPMConfig(epsilon=0.1),
            rng=0,
        )
        assert result.history.total_noise() > 0.0

    def test_epsilon_accounting(self, tiny_problem):
        config = DistributedConfig(max_iterations=4, accuracy=0.0)
        result = solve_distributed(
            tiny_problem, config, privacy=LPPMConfig(epsilon=0.2), rng=0
        )
        phases_per_sbs = result.iterations
        assert result.total_epsilon == pytest.approx(0.2 * phases_per_sbs)

    def test_private_cost_at_least_noiseless(self, tiny_problem):
        noiseless = solve_distributed(tiny_problem)
        private = solve_distributed(
            tiny_problem,
            DistributedConfig(max_iterations=6, accuracy=1e-4),
            privacy=LPPMConfig(epsilon=0.01),
            rng=0,
        )
        assert private.cost >= noiseless.cost - 1e-6

    def test_more_budget_less_cost(self, tiny_problem):
        """Across a wide epsilon range the cost trend is monotone."""
        config = DistributedConfig(max_iterations=5, accuracy=1e-3)
        costs = []
        for epsilon in (0.01, 1.0, 1000.0):
            runs = [
                solve_distributed(
                    tiny_problem, config, privacy=LPPMConfig(epsilon=epsilon), rng=seed
                ).cost
                for seed in range(5)
            ]
            costs.append(np.mean(runs))
        assert costs[0] >= costs[1] >= costs[2] - 1e-9

    def test_reported_solution_feasible(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(max_iterations=4, accuracy=1e-3),
            privacy=LPPMConfig(epsilon=0.1),
            rng=3,
        )
        assert result.solution.is_feasible(tiny_problem)


class TestJacobiMode:
    def test_jacobi_runs(self, tiny_problem):
        """Jacobi updates against stale aggregates can transiently
        over-serve shared requests; everything else stays feasible and
        the repaired solution is always valid."""
        result = solve_distributed(
            tiny_problem, DistributedConfig(mode="jacobi", max_iterations=10)
        )
        report = result.solution.check_feasibility(tiny_problem)
        families = set(report.by_constraint())
        assert families.issubset({"unit_demand(4)"})
        assert result.solution.repaired(tiny_problem).is_feasible(tiny_problem)

    def test_jacobi_with_damping(self, tiny_problem):
        result = solve_distributed(
            tiny_problem,
            DistributedConfig(mode="jacobi", damping=0.5, max_iterations=10),
        )
        assert result.cost < tiny_problem.max_cost()

    def test_damping_tames_oscillation(self, tiny_problem):
        """Undamped Jacobi oscillates between duplicating best responses;
        damping settles it to a (weakly) cheaper repaired policy."""
        undamped = solve_distributed(
            tiny_problem, DistributedConfig(mode="jacobi", max_iterations=15)
        )
        damped = solve_distributed(
            tiny_problem, DistributedConfig(mode="jacobi", max_iterations=15, damping=0.5)
        )
        cost_undamped = undamped.solution.repaired(tiny_problem).cost(tiny_problem)
        cost_damped = damped.solution.repaired(tiny_problem).cost(tiny_problem)
        assert cost_damped <= cost_undamped + 1e-6

    def test_jacobi_bounded_by_w(self, tiny_problem):
        for damping in (1.0, 0.5):
            result = solve_distributed(
                tiny_problem,
                DistributedConfig(mode="jacobi", max_iterations=10, damping=damping),
            )
            assert result.cost <= tiny_problem.max_cost() + 1e-9


class TestJacobiExecutor:
    """The intra-solve thread pool: bit-identical to the sequential sweep."""

    def _run(self, problem, *, workers, privacy=None, recorder=None, rng=0):
        from repro import obs

        config = DistributedConfig(
            mode="jacobi", max_iterations=5, damping=0.7, jacobi_workers=workers
        )
        if recorder is not None:
            with obs.recording(recorder, timings=False):
                return solve_distributed(problem, config, privacy=privacy, rng=rng)
        return solve_distributed(problem, config, privacy=privacy, rng=rng)

    def test_threadpool_bit_identical(self, tiny_problem):
        sequential = self._run(tiny_problem, workers=1)
        pooled = self._run(tiny_problem, workers=4)
        assert sequential.cost == pooled.cost
        assert np.array_equal(sequential.solution.caching, pooled.solution.caching)
        assert np.array_equal(sequential.solution.routing, pooled.solution.routing)
        assert sequential.iterations == pooled.iterations
        assert sequential.converged == pooled.converged

    def test_threadpool_trace_identical(self, tiny_problem):
        from repro.obs.recorder import ListRecorder

        rec_seq, rec_pool = ListRecorder(), ListRecorder()
        self._run(tiny_problem, workers=1, recorder=rec_seq)
        self._run(tiny_problem, workers=3, recorder=rec_pool)
        assert rec_seq.events == rec_pool.events

    def test_threadpool_private_run_identical(self, tiny_problem):
        """Privacy noise draws in sweep order either way: same noise."""
        from repro.privacy.mechanism import LPPMConfig

        privacy = LPPMConfig(epsilon=1.0)
        sequential = self._run(tiny_problem, workers=1, privacy=privacy)
        pooled = self._run(tiny_problem, workers=4, privacy=privacy)
        assert sequential.cost == pooled.cost
        assert np.array_equal(sequential.solution.routing, pooled.solution.routing)

    def test_threadpool_perf_counters_match(self, tiny_problem):
        from repro import perf

        with perf.collecting() as seq_registry:
            self._run(tiny_problem, workers=1)
        with perf.collecting() as pool_registry:
            self._run(tiny_problem, workers=4)
        assert (
            seq_registry.snapshot()["counters"]
            == pool_registry.snapshot()["counters"]
        )

    def test_workers_rejected_in_gauss_seidel(self):
        with pytest.raises(ValidationError):
            DistributedConfig(mode="gauss-seidel", jacobi_workers=2)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValidationError):
            DistributedConfig(mode="jacobi", jacobi_workers=0)
