"""CI smoke driver for the socket runtime: ``python -m repro.runtime.smoke``.

Three checks, exercised by the ``runtime-smoke`` and ``timeline-smoke``
CI jobs:

* ``faultfree`` — solve one 3-SBS instance twice, once over sockets and
  once with the in-process simulator (quiet ``FaultConfig``), and demand
  **bit-identical** traces (byte comparison plus ``repro-trace diff``
  for a readable report on divergence) and identical solutions;
* ``chaos`` — run the same instance through the chaos proxy on a fixed
  seed (drops, duplicates, delays, reordering, truncation, one crash
  window) and demand that the run still converges and that the trace
  passes every ``repro-trace validate`` invariant;
* ``timeline`` — span-enabled runs: two fault-free ``spans=True,
  timings=False`` runs must produce byte-identical traces with a
  well-formed merged span tree (single root, no orphans, no cycles),
  then a timed chaos run renders the per-node Gantt SVG and the
  critical-path attribution JSON as CI artifacts, gating that the
  critical path covers the root span's wall-clock within 5%.

All exit nonzero on failure, so the jobs gate merges.  The instance is
deterministic (fixed generator seed) and small enough to finish in
seconds.
"""

from __future__ import annotations

import argparse
import filecmp
import json
import sys
import tempfile
from pathlib import Path
from typing import Callable, List, Optional

import numpy as np

from .. import obs
from ..core.distributed import DistributedConfig, solve_distributed
from ..core.problem import ProblemInstance
from ..network.faults import FaultConfig, FaultSchedule, LinkFaultProfile
from ..obs.cli import main as trace_cli
from ..obs.span_analysis import check_spans, critical_path
from ..obs.trace import TraceReader
from .config import RuntimeConfig
from .server import solve_over_sockets

__all__ = ["main", "smoke_problem", "chaos_plan"]

#: Instance size used by the smoke checks (3 SBSs, 50 files).
NUM_SBS = 3
NUM_GROUPS = 4
NUM_FILES = 50


def smoke_problem(seed: int = 2024) -> ProblemInstance:
    """The deterministic 3-SBS / 50-file instance the smoke checks solve."""
    rng = np.random.default_rng(seed)
    demand = rng.uniform(0.0, 5.0, size=(NUM_GROUPS, NUM_FILES))
    connectivity = (rng.uniform(size=(NUM_SBS, NUM_GROUPS)) < 0.7).astype(float)
    for n in range(NUM_SBS):
        if connectivity[n].sum() == 0:
            connectivity[n, int(rng.integers(NUM_GROUPS))] = 1.0
    return ProblemInstance(
        demand=demand,
        connectivity=connectivity,
        cache_capacity=np.full(NUM_SBS, float(NUM_FILES // 5)),
        bandwidth=np.full(NUM_SBS, demand.sum() / (2.0 * NUM_SBS)),
        sbs_cost=rng.uniform(0.5, 2.0, size=(NUM_SBS, NUM_GROUPS)),
        bs_cost=rng.uniform(50.0, 100.0, size=NUM_GROUPS),
    )


def _config() -> DistributedConfig:
    return DistributedConfig(max_iterations=8)


def _record(path: Path, runner: Callable[[], object]) -> object:
    with obs.recording(path, timings=False):
        return runner()


def _cmd_faultfree(args: argparse.Namespace) -> int:
    problem = smoke_problem()
    config = _config()
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="runtime-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    socket_trace = workdir / "socket.jsonl"
    sim_trace = workdir / "inprocess.jsonl"
    result_socket, _report = _record(
        socket_trace,
        lambda: solve_over_sockets(
            problem, config, runtime=RuntimeConfig(mode=args.mode)
        ),
    )
    result_sim = _record(
        sim_trace,
        lambda: solve_distributed(problem, config, faults=FaultConfig()),
    )
    print(
        f"socket: cost={result_socket.cost:.6f} iterations={result_socket.iterations} "
        f"| in-process: cost={result_sim.cost:.6f} iterations={result_sim.iterations}"
    )
    failures = 0
    if not np.array_equal(
        result_socket.solution.routing, result_sim.solution.routing
    ) or not np.array_equal(result_socket.solution.caching, result_sim.solution.caching):
        print("FAIL: socket and in-process solutions differ", file=sys.stderr)
        failures += 1
    if filecmp.cmp(socket_trace, sim_trace, shallow=False):
        print(f"traces byte-identical: {socket_trace} == {sim_trace}")
    else:
        print("FAIL: traces differ — repro-trace diff follows", file=sys.stderr)
        trace_cli(["diff", str(socket_trace), str(sim_trace)])
        failures += 1
    return 1 if failures else 0


def chaos_plan(seed: int) -> FaultConfig:
    """The fixed chaos mix the smoke check and the runtime bench share."""
    return FaultConfig(
        default=LinkFaultProfile(
            drop=0.08, duplicate=0.05, delay=0.08, reorder=0.05, truncate=0.04
        ),
        schedule=FaultSchedule().crash_sbs(1, at=1, recover_at=2),
        seed=seed,
    )


def _cmd_chaos(args: argparse.Namespace) -> int:
    problem = smoke_problem()
    config = _config()
    runtime = RuntimeConfig(
        faults=chaos_plan(args.seed), ack_timeout=0.1, phase_deadline=10.0
    )
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="runtime-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    trace = workdir / "chaos.jsonl"
    (result, report) = _record(
        trace, lambda: solve_over_sockets(problem, config, runtime=runtime)
    )
    print(
        f"chaos: cost={result.cost:.6f} converged={result.converged} "
        f"stale={result.stale_phases} retries={result.total_retries}"
    )
    print(f"proxy ledger: {json.dumps(report.proxy, sort_keys=True)}")
    failures = 0
    if not result.converged:
        print("FAIL: chaos run did not converge", file=sys.stderr)
        failures += 1
    if trace_cli(["validate", str(trace)]) != 0:
        failures += 1
    return 1 if failures else 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    problem = smoke_problem()
    config = _config()
    workdir = Path(args.workdir or tempfile.mkdtemp(prefix="runtime-smoke-"))
    workdir.mkdir(parents=True, exist_ok=True)
    failures = 0

    # 1) Span determinism + well-formedness: two fault-free runs with
    # spans on and timings off must be byte-identical, and their merged
    # span tree must have one root, no orphans and no cycles.
    first = workdir / f"spans-{args.mode}-a.jsonl"
    second = workdir / f"spans-{args.mode}-b.jsonl"
    for path in (first, second):
        with obs.recording(path, timings=False, spans=True):
            solve_over_sockets(
                problem, config, runtime=RuntimeConfig(mode=args.mode)
            )
    if filecmp.cmp(first, second, shallow=False):
        print(f"span traces byte-identical: {first} == {second}")
    else:
        print(
            "FAIL: span-enabled traces differ across identical runs",
            file=sys.stderr,
        )
        trace_cli(["diff", str(first), str(second), "--strict-timings"])
        failures += 1
    issues = check_spans(TraceReader(str(first)).events)
    if issues:
        for issue in issues:
            print(f"FAIL: malformed span tree: {issue}", file=sys.stderr)
        failures += 1
    else:
        print("span tree well-formed (single root, no orphans, no cycles)")

    # 2) Timed chaos run: render the Gantt SVG and the critical-path
    # attribution JSON (the CI job uploads both as artifacts).
    runtime = RuntimeConfig(
        mode=args.mode,
        faults=chaos_plan(args.seed),
        ack_timeout=0.1,
        phase_deadline=10.0,
    )
    trace = workdir / f"timeline-{args.mode}.jsonl"
    with obs.recording(trace, timings=True, spans=True):
        result, _report = solve_over_sockets(problem, config, runtime=runtime)
    if not result.converged:
        print("FAIL: chaos timeline run did not converge", file=sys.stderr)
        failures += 1
    events = TraceReader(str(trace)).events
    chaos_issues = check_spans(events)
    if chaos_issues:
        for issue in chaos_issues:
            print(f"FAIL: malformed chaos span tree: {issue}", file=sys.stderr)
        failures += 1
    svg = workdir / f"timeline-{args.mode}.svg"
    if trace_cli(["timeline", str(trace), "--out", str(svg)]) != 0:
        failures += 1
    report = critical_path(events)
    path_json = workdir / f"critical-path-{args.mode}.json"
    path_json.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path_json}")
    roots = [
        event
        for event in events
        if event.get("type") == "span" and event.get("parent") is None
    ]
    if report["basis"] == "wall" and roots and "seconds" in roots[0]:
        root_seconds = float(roots[0]["seconds"])
        error = abs(report["total"] - root_seconds) / max(root_seconds, 1e-12)
        print(
            f"critical path covers {report['total']:.4f}s of the root span's "
            f"{root_seconds:.4f}s ({100.0 * error:.2f}% error)"
        )
        if error > 0.05:
            print(
                "FAIL: critical path does not sum to the run wall-clock "
                "within 5%",
                file=sys.stderr,
            )
            failures += 1
    else:
        print("FAIL: timed run produced no wall-basis root span", file=sys.stderr)
        failures += 1
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-runtime-smoke",
        description="Socket-runtime smoke checks (bit-identity and chaos).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    faultfree = subparsers.add_parser(
        "faultfree", help="socket run must bit-match the in-process simulation"
    )
    faultfree.add_argument(
        "--mode", choices=("tasks", "processes"), default="tasks"
    )
    faultfree.add_argument("--workdir", default=None, help="keep traces here")
    faultfree.set_defaults(func=_cmd_faultfree)

    chaos = subparsers.add_parser(
        "chaos", help="seeded chaos run must converge and validate"
    )
    chaos.add_argument("--seed", type=int, default=3)
    chaos.add_argument("--workdir", default=None, help="keep traces here")
    chaos.set_defaults(func=_cmd_chaos)

    timeline = subparsers.add_parser(
        "timeline",
        help="span determinism + Gantt/critical-path rendering for a chaos run",
    )
    timeline.add_argument(
        "--mode", choices=("tasks", "processes"), default="tasks"
    )
    timeline.add_argument("--seed", type=int, default=3)
    timeline.add_argument("--workdir", default=None, help="keep artifacts here")
    timeline.set_defaults(func=_cmd_timeline)

    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
