"""Privacy-budget accounting across the distributed iterations.

Algorithm 1 uploads a perturbed routing policy once per SBS per
iteration; each upload is one ``epsilon``-DP release.  Over a run the
total leakage follows composition theorems (Dwork & Roth 2014):

* **basic composition** — ``k`` releases at ``epsilon`` each are
  ``(k * epsilon)``-DP;
* **advanced composition** (Thm 3.20 of Dwork & Roth) — for any
  ``delta' > 0`` they are
  ``(epsilon * sqrt(2 k ln(1/delta')) + k epsilon (e^epsilon - 1),
  delta')``-DP, which is tighter for many small releases.

The accountant also answers the planning question: given a total budget
and an iteration cap, what per-release epsilon may each SBS use?
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Tuple

from ..analysis.taint import decl as taint
from ..exceptions import PrivacyError

__all__ = ["Release", "PrivacyAccountant", "advanced_composition_epsilon", "per_release_epsilon"]


@dataclasses.dataclass(frozen=True)
class Release:
    """One differentially private release by a named party."""

    party: str
    epsilon: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PrivacyError(f"release epsilon must be positive, got {self.epsilon}")


def advanced_composition_epsilon(epsilon: float, count: int, delta_prime: float) -> float:
    """Total epsilon of ``count`` releases under advanced composition."""
    if epsilon <= 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")
    if count < 0:
        raise PrivacyError(f"count must be nonnegative, got {count}")
    if not 0 < delta_prime < 1:
        raise PrivacyError(f"delta_prime must lie in (0, 1), got {delta_prime}")
    if count == 0:
        return 0.0
    return epsilon * math.sqrt(2.0 * count * math.log(1.0 / delta_prime)) + count * epsilon * (
        math.exp(epsilon) - 1.0
    )


def per_release_epsilon(total_epsilon: float, releases: int) -> float:
    """Per-release budget so that basic composition meets ``total_epsilon``."""
    if total_epsilon <= 0:
        raise PrivacyError(f"total_epsilon must be positive, got {total_epsilon}")
    if releases <= 0:
        raise PrivacyError(f"releases must be positive, got {releases}")
    return total_epsilon / releases


class PrivacyAccountant:
    """Tracks every release and reports composed guarantees.

    Optionally enforces a hard budget: :meth:`record` raises once basic
    composition would exceed ``budget``.
    """

    def __init__(self, budget: Optional[float] = None) -> None:
        if budget is not None and budget <= 0:
            raise PrivacyError(f"budget must be positive, got {budget}")
        self._budget = budget
        self._releases: List[Release] = []

    @property
    def releases(self) -> Tuple[Release, ...]:
        return tuple(self._releases)

    @property
    def budget(self) -> Optional[float]:
        return self._budget

    @taint.booking
    def record(self, party: str, epsilon: float, label: str = "") -> Release:
        """Record a release; raise if it would blow a configured budget."""
        release = Release(party=party, epsilon=epsilon, label=label)
        if self._budget is not None and self.total_epsilon_basic() + epsilon > self._budget + 1e-12:
            raise PrivacyError(
                f"recording epsilon={epsilon} would exceed the privacy budget "
                f"{self._budget} (already spent {self.total_epsilon_basic():.6g})"
            )
        self._releases.append(release)
        return release

    def total_epsilon_basic(self, party: Optional[str] = None) -> float:
        """Basic-composition total, optionally for a single party.

        Per-party accounting is the relevant guarantee here: each SBS
        perturbs its own data independently, so an attacker observing
        every broadcast learns about one SBS only through that SBS's own
        releases.
        """
        return sum(
            release.epsilon
            for release in self._releases
            if party is None or release.party == party
        )

    def total_epsilon_advanced(
        self, delta_prime: float, party: Optional[str] = None
    ) -> float:
        """Advanced-composition total for homogeneous releases.

        Requires every counted release to share one epsilon; raises
        otherwise (heterogeneous advanced composition needs the optimal
        composition theorem, out of scope for the paper's mechanism).
        """
        relevant = [
            release.epsilon
            for release in self._releases
            if party is None or release.party == party
        ]
        if not relevant:
            return 0.0
        first = relevant[0]
        if any(abs(epsilon - first) > 1e-12 for epsilon in relevant):
            raise PrivacyError(
                "advanced composition requires homogeneous per-release epsilons"
            )
        return advanced_composition_epsilon(first, len(relevant), delta_prime)

    def remaining_budget(self) -> Optional[float]:
        """Budget left under basic composition, or ``None`` if unlimited."""
        if self._budget is None:
            return None
        return max(0.0, self._budget - self.total_epsilon_basic())
