"""Tests for the problem model (Section II / Table I)."""

import numpy as np
import pytest

from repro.core.problem import ProblemInstance
from repro.exceptions import ValidationError

from conftest import random_problem


def make_args(**overrides):
    args = dict(
        demand=np.array([[2.0, 1.0], [1.0, 3.0]]),
        connectivity=np.array([[1.0, 0.0], [1.0, 1.0]]),
        cache_capacity=np.array([1.0, 2.0]),
        bandwidth=np.array([5.0, 5.0]),
        sbs_cost=np.ones((2, 2)),
        bs_cost=np.array([10.0, 12.0]),
    )
    args.update(overrides)
    return args


class TestConstruction:
    def test_valid(self):
        problem = ProblemInstance(**make_args())
        assert problem.shape == (2, 2, 2)

    def test_dimensions(self):
        problem = ProblemInstance(**make_args())
        assert problem.num_sbs == 2
        assert problem.num_groups == 2
        assert problem.num_files == 2

    def test_arrays_read_only(self):
        problem = ProblemInstance(**make_args())
        with pytest.raises(ValueError):
            problem.demand[0, 0] = 99.0

    def test_negative_demand_rejected(self):
        with pytest.raises(ValidationError):
            ProblemInstance(**make_args(demand=np.array([[-1.0, 1.0], [1.0, 1.0]])))

    def test_nonbinary_connectivity_rejected(self):
        with pytest.raises(ValidationError):
            ProblemInstance(**make_args(connectivity=np.array([[0.5, 0.0], [1.0, 1.0]])))

    def test_connectivity_shape_mismatch(self):
        with pytest.raises(ValidationError, match="connectivity"):
            ProblemInstance(**make_args(connectivity=np.array([[1.0, 0.0, 1.0]])))

    def test_bs_cost_must_dominate(self):
        with pytest.raises(ValidationError, match="dominate"):
            ProblemInstance(**make_args(bs_cost=np.array([0.5, 12.0])))

    def test_bs_cost_dominance_only_on_connected(self):
        # SBS 0 does not reach group 1, so a cheap bs_cost there is fine
        # as long as sbs_cost on the connected pairs stays below it.
        args = make_args(
            connectivity=np.array([[1.0, 0.0], [1.0, 0.0]]),
            sbs_cost=np.array([[1.0, 99.0], [1.0, 99.0]]),
            bs_cost=np.array([10.0, 1.0]),
        )
        ProblemInstance(**args)

    def test_empty_demand_rejected(self):
        with pytest.raises(ValidationError):
            ProblemInstance(**make_args(demand=np.zeros((0, 2)), bs_cost=np.zeros(0),
                                        sbs_cost=np.zeros((2, 0)),
                                        connectivity=np.zeros((2, 0))))


class TestDerived:
    def test_savings_margin_zero_when_disconnected(self):
        problem = ProblemInstance(**make_args())
        margin = problem.savings_margin()
        assert margin[0, 1] == 0.0
        assert margin[0, 0] == pytest.approx(9.0)

    def test_savings_rate_shape_and_value(self):
        problem = ProblemInstance(**make_args())
        rate = problem.savings_rate()
        assert rate.shape == (2, 2, 2)
        # SBS 1, group 1, file 1: (12 - 1) * 1 * 3.0
        assert rate[1, 1, 1] == pytest.approx(33.0)

    def test_max_cost(self):
        problem = ProblemInstance(**make_args())
        # W = 10 * (2+1) + 12 * (1+3)
        assert problem.max_cost() == pytest.approx(78.0)

    def test_total_demand(self):
        problem = ProblemInstance(**make_args())
        assert problem.total_demand() == pytest.approx(7.0)

    def test_file_popularity(self):
        problem = ProblemInstance(**make_args())
        np.testing.assert_allclose(problem.file_popularity(), [3.0, 4.0])

    def test_group_demand(self):
        problem = ProblemInstance(**make_args())
        np.testing.assert_allclose(problem.group_demand(), [3.0, 4.0])

    def test_neighbours(self):
        problem = ProblemInstance(**make_args())
        np.testing.assert_array_equal(problem.neighbours_of_sbs(0), [0])
        np.testing.assert_array_equal(problem.sbs_of_group(1), [1])

    def test_neighbours_bad_index(self):
        problem = ProblemInstance(**make_args())
        with pytest.raises(ValidationError):
            problem.neighbours_of_sbs(5)
        with pytest.raises(ValidationError):
            problem.sbs_of_group(-1)

    def test_num_links(self):
        problem = ProblemInstance(**make_args())
        assert problem.num_links() == 3

    def test_describe_keys(self):
        problem = ProblemInstance(**make_args())
        description = problem.describe()
        assert description["num_links"] == 3
        assert description["max_cost"] == pytest.approx(78.0)


class TestTransforms:
    def test_with_bandwidth_scalar(self):
        problem = ProblemInstance(**make_args())
        other = problem.with_bandwidth(7.5)
        np.testing.assert_allclose(other.bandwidth, [7.5, 7.5])
        # original untouched
        np.testing.assert_allclose(problem.bandwidth, [5.0, 5.0])

    def test_with_cache_capacity(self):
        problem = ProblemInstance(**make_args())
        other = problem.with_cache_capacity([1.0, 1.0])
        np.testing.assert_allclose(other.cache_capacity, [1.0, 1.0])

    def test_with_connectivity(self):
        problem = ProblemInstance(**make_args())
        other = problem.with_connectivity(np.ones((2, 2)))
        assert other.num_links() == 4

    def test_restrict_groups(self):
        problem = ProblemInstance(**make_args())
        sub = problem.restrict_groups([1])
        assert sub.num_groups == 1
        np.testing.assert_allclose(sub.demand, [[1.0, 3.0]])
        np.testing.assert_allclose(sub.bs_cost, [12.0])

    def test_restrict_groups_bad_index(self):
        problem = ProblemInstance(**make_args())
        with pytest.raises(ValidationError):
            problem.restrict_groups([5])

    def test_restrict_groups_empty(self):
        problem = ProblemInstance(**make_args())
        with pytest.raises(ValidationError):
            problem.restrict_groups([])


class TestRandomInstances:
    def test_random_instances_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            problem = random_problem(rng)
            assert problem.max_cost() >= 0
            assert problem.savings_rate().min() >= 0


class TestDerivedCaching:
    """Memoized derived quantities: same object back, correct, picklable."""

    def test_repeated_calls_return_cached_object(self):
        problem = ProblemInstance(**make_args())
        assert problem.savings_rate() is problem.savings_rate()
        assert problem.savings_margin() is problem.savings_margin()
        assert problem.demand_flat() is problem.demand_flat()
        assert problem.cache_slots() is problem.cache_slots()
        assert problem.potential_routing_mask() is problem.potential_routing_mask()
        assert problem.connectivity_indices() is problem.connectivity_indices()

    def test_cached_arrays_are_read_only(self):
        problem = ProblemInstance(**make_args())
        with pytest.raises(ValueError):
            problem.savings_margin()[0] = 99.0
        with pytest.raises(ValueError):
            problem.demand_flat()[0] = 99.0

    def test_demand_flat_matches_demand(self):
        problem = ProblemInstance(**make_args())
        np.testing.assert_array_equal(
            problem.demand_flat(), problem.demand.ravel()
        )

    def test_cache_slots_floor(self):
        problem = ProblemInstance(**make_args())
        np.testing.assert_array_equal(
            problem.cache_slots(),
            np.floor(problem.cache_capacity + 1e-9).astype(np.int64),
        )

    def test_potential_routing_mask_semantics(self):
        problem = ProblemInstance(**make_args())
        mask = problem.potential_routing_mask()
        expected = (
            (problem.connectivity[:, :, np.newaxis] > 0)
            & (problem.demand[np.newaxis, :, :] > 0)
            & (problem.savings_margin()[:, :, np.newaxis] > 0)
        )
        np.testing.assert_array_equal(mask, expected)

    def test_connectivity_indices_match_neighbours(self):
        problem = ProblemInstance(**make_args())
        for sbs in range(problem.num_sbs):
            np.testing.assert_array_equal(
                problem.connectivity_indices()[sbs],
                np.flatnonzero(problem.connectivity[sbs] > 0),
            )
            np.testing.assert_array_equal(
                problem.neighbours_of_sbs(sbs),
                np.flatnonzero(problem.connectivity[sbs] > 0),
            )

    def test_pickle_roundtrip_preserves_values_and_cache(self):
        import pickle

        problem = ProblemInstance(**make_args())
        problem.savings_margin()  # populate the cache before pickling
        clone = pickle.loads(pickle.dumps(problem))
        np.testing.assert_array_equal(clone.demand, problem.demand)
        np.testing.assert_array_equal(clone.connectivity, problem.connectivity)
        np.testing.assert_array_equal(
            clone.savings_margin(), problem.savings_margin()
        )
        # The clone gets a fresh, working cache of its own.
        assert clone.savings_margin() is clone.savings_margin()
        assert clone.max_cost() == problem.max_cost()


class TestDerivedCacheThreadSafety:
    """First touch of the memoized arrays must be race-free.

    The Jacobi executor (``DistributedConfig(jacobi_workers=N)``) runs
    ``solve_phase`` on a ThreadPool, and every worker reads the derived
    arrays through ``_cached``.  Before the lock, concurrent first
    touches could each run the factory and publish different objects;
    every caller must instead observe the one shared instance.
    """

    ACCESSORS = (
        "savings_rate",
        "savings_margin",
        "potential_routing_mask",
        "demand_flat",
        "cache_slots",
        "connectivity_indices",
        "profitable_file_mask",
    )

    def test_first_touch_from_threads_returns_one_object(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        rng = np.random.default_rng(601)
        for round_ in range(20):
            problem = random_problem(rng)
            barrier = threading.Barrier(8)

            def touch(index, problem=problem, barrier=barrier):
                name = self.ACCESSORS[index % len(self.ACCESSORS)]
                barrier.wait()  # line every worker up on the cold cache
                return name, getattr(problem, name)()

            with ThreadPoolExecutor(max_workers=8) as pool:
                results = list(pool.map(touch, range(8)))
            for name, value in results:
                assert value is getattr(problem, name)(), (round_, name)

    def test_concurrent_same_key_single_object(self):
        import threading
        from concurrent.futures import ThreadPoolExecutor

        problem = ProblemInstance(**make_args())
        barrier = threading.Barrier(16)

        def touch(_):
            barrier.wait()
            return problem.savings_rate()

        with ThreadPoolExecutor(max_workers=16) as pool:
            results = list(pool.map(touch, range(16)))
        first = results[0]
        assert all(value is first for value in results)

    def test_nested_factories_do_not_deadlock(self):
        # savings_rate() -> savings_margin() re-enters _cached while the
        # outer factory holds the (reentrant) lock.
        problem = ProblemInstance(**make_args())
        assert problem.savings_rate() is problem.savings_rate()
        assert problem.potential_routing_mask() is problem.potential_routing_mask()
