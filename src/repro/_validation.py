"""Shared validation helpers used across the package.

These helpers normalise user input to ``numpy`` arrays with a known dtype
and shape, raising :class:`repro.exceptions.ValidationError` with a precise
message when the input is malformed.  Centralising the checks keeps the
public constructors short and the error messages consistent.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple, Union

import numpy as np

from .exceptions import ValidationError

ArrayLike = Union[np.ndarray, Sequence, float, int]


def as_float_array(
    value: ArrayLike,
    name: str,
    *,
    shape: Optional[Tuple[int, ...]] = None,
    ndim: Optional[int] = None,
    nonnegative: bool = False,
    positive: bool = False,
    finite: bool = True,
) -> np.ndarray:
    """Convert ``value`` to a float64 array and validate it.

    Parameters
    ----------
    value:
        Anything convertible by :func:`numpy.asarray`.
    name:
        Name used in error messages.
    shape:
        Exact shape the array must have, if given.
    ndim:
        Exact number of dimensions the array must have, if given.
    nonnegative / positive:
        Require every entry to be ``>= 0`` / ``> 0``.
    finite:
        Require every entry to be finite (no NaN or infinity).
    """
    if np.iscomplexobj(value):
        raise ValidationError(f"{name} must be real-valued, got complex entries")
    try:
        array = np.asarray(value, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} is not convertible to a float array: {exc}") from exc
    if shape is not None and array.shape != shape:
        raise ValidationError(f"{name} must have shape {shape}, got {array.shape}")
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(f"{name} must have {ndim} dimension(s), got {array.ndim}")
    if finite and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} must be finite everywhere")
    if positive and not np.all(array > 0):
        raise ValidationError(f"{name} must be strictly positive everywhere")
    if nonnegative and not np.all(array >= 0):
        raise ValidationError(f"{name} must be nonnegative everywhere")
    return array


def as_binary_array(
    value: ArrayLike,
    name: str,
    *,
    shape: Optional[Tuple[int, ...]] = None,
    tol: float = 1e-9,
) -> np.ndarray:
    """Convert ``value`` to a float64 array whose entries are 0 or 1.

    Entries within ``tol`` of 0 or 1 are snapped exactly; anything else is
    rejected.
    """
    array = as_float_array(value, name, shape=shape)
    snapped = np.where(np.abs(array) <= tol, 0.0, np.where(np.abs(array - 1.0) <= tol, 1.0, array))
    if not np.all((snapped == 0.0) | (snapped == 1.0)):
        bad = snapped[(snapped != 0.0) & (snapped != 1.0)]
        raise ValidationError(f"{name} must be binary (0/1); found values such as {bad.flat[0]!r}")
    return snapped


def as_probability_array(
    value: ArrayLike,
    name: str,
    *,
    shape: Optional[Tuple[int, ...]] = None,
    tol: float = 1e-9,
) -> np.ndarray:
    """Convert ``value`` to a float64 array with entries in ``[0, 1]``.

    Entries within ``tol`` outside the interval are clipped back; anything
    further out is rejected.
    """
    array = as_float_array(value, name, shape=shape)
    if np.any(array < -tol) or np.any(array > 1.0 + tol):
        low, high = float(array.min()), float(array.max())
        raise ValidationError(f"{name} must lie in [0, 1]; observed range [{low}, {high}]")
    return np.clip(array, 0.0, 1.0)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_nonnegative_float(value: float, name: str) -> float:
    """Validate that ``value`` is a finite nonnegative number and return it."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(number) or number < 0:
        raise ValidationError(f"{name} must be finite and nonnegative, got {number}")
    return number


def check_in_interval(
    value: float,
    name: str,
    *,
    low: float,
    high: float,
    low_open: bool = False,
    high_open: bool = False,
) -> float:
    """Validate that ``value`` lies in the given interval and return it."""
    try:
        number = float(value)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a number, got {value!r}") from exc
    if not np.isfinite(number):
        raise ValidationError(f"{name} must be finite, got {number}")
    low_ok = number > low if low_open else number >= low
    high_ok = number < high if high_open else number <= high
    if not (low_ok and high_ok):
        lb = "(" if low_open else "["
        rb = ")" if high_open else "]"
        raise ValidationError(f"{name} must lie in {lb}{low}, {high}{rb}, got {number}")
    return number


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def rng_from(seed_or_rng: Union[int, np.random.Generator, None]) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed, generator or None."""
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


# numpy renamed trapz -> trapezoid in 2.0; support both.
trapezoid = getattr(np, "trapezoid", None) or np.trapz
